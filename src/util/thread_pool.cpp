#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace remspan {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t /*worker_id*/) {
  while (true) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task.fn();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t chunk) {
  parallel_for_workers(
      begin, end, [&body](std::size_t i, std::size_t /*worker*/) { body(i); }, chunk);
}

void ThreadPool::parallel_for_workers(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body, std::size_t chunk) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  // Never enqueue more helpers than there are items beyond the caller's own:
  // surplus helpers would only wake up, fail the fetch_add race, and go back
  // to sleep — pure wakeup/teardown overhead on small inputs.
  const std::size_t helpers = std::min(workers_.size(), total - 1);
  if (helpers == 0) {
    const std::size_t caller_id = workers_.size();
    for (std::size_t i = begin; i < end; ++i) body(i, caller_id);
    return;
  }
  if (chunk == 0) {
    chunk = std::max<std::size_t>(1, total / ((helpers + 1) * 8));
  }

  struct Shared {
    std::atomic<std::size_t> next;
    std::size_t end;
    std::size_t chunk;
    const std::function<void(std::size_t, std::size_t)>* body;
    std::atomic<std::size_t> remaining;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  Shared shared;
  shared.next.store(begin, std::memory_order_relaxed);
  shared.end = end;
  shared.chunk = chunk;
  shared.body = &body;
  shared.remaining.store(helpers, std::memory_order_relaxed);

  auto drain = [&shared](std::size_t worker_id) {
    try {
      while (true) {
        const std::size_t lo =
            shared.next.fetch_add(shared.chunk, std::memory_order_relaxed);
        if (lo >= shared.end) break;
        const std::size_t hi = std::min(shared.end, lo + shared.chunk);
        for (std::size_t i = lo; i < hi; ++i) (*shared.body)(i, worker_id);
      }
    } catch (...) {
      std::lock_guard lock(shared.error_mutex);
      if (!shared.error) shared.error = std::current_exception();
      // Drop pending work so everyone exits promptly.
      shared.next.store(shared.end, std::memory_order_relaxed);
    }
  };

  {
    std::lock_guard lock(mutex_);
    for (std::size_t w = 0; w < helpers; ++w) {
      queue_.push(Task{[&shared, &drain, w] {
        drain(w);
        // The decrement must happen under done_mutex: if it preceded the
        // lock, the caller could observe remaining == 0 (spurious wakeup),
        // return, and destroy `shared` while this helper is still about to
        // lock/notify the destroyed mutex and condition variable.
        std::lock_guard done_lock(shared.done_mutex);
        if (shared.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          shared.done_cv.notify_all();
        }
      }});
    }
  }
  cv_.notify_all();

  // The caller thread participates with the last worker id.
  drain(workers_.size());

  std::unique_lock lock(shared.done_mutex);
  shared.done_cv.wait(lock, [&shared] {
    return shared.remaining.load(std::memory_order_acquire) == 0;
  });
  if (shared.error) std::rethrow_exception(shared.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(begin, end, body);
}

}  // namespace remspan
