#include "util/fit.hpp"

#include <algorithm>
#include <cmath>

#include "util/prelude.hpp"

namespace remspan {

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  REMSPAN_CHECK(xs.size() == ys.size());
  REMSPAN_CHECK(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0) {
    double ss_res = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys) {
  REMSPAN_CHECK(xs.size() == ys.size());
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    REMSPAN_CHECK(xs[i] > 0 && ys[i] > 0);
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_linear(lx, ly);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0;
  for (const double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  if (xs.size() % 2 == 1) return xs[mid];
  const double hi = xs[mid];
  const double lo = *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace remspan
