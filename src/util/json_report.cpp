#include "util/json_report.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>

#include "util/prelude.hpp"
#include "util/strnum.hpp"

namespace remspan {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string double_to_string(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  std::string s = os.str();
  // Keep doubles recognizably non-integral so the parser restores the type.
  if (s.find_first_of(".eEnN") == std::string::npos) s += ".0";
  return s;
}

void upsert(std::vector<std::pair<std::string, JsonScalar>>& entries, const std::string& key,
            JsonScalar value) {
  for (auto& [k, v] : entries) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries.emplace_back(key, std::move(value));
}

void append_object(std::string& out, const std::vector<std::pair<std::string, JsonScalar>>& kv) {
  out += '{';
  bool first = true;
  for (const auto& [key, value] : kv) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, key);
    out += ": ";
    out += json_scalar_to_string(value);
  }
  out += '}';
}

/// Minimal recursive-descent parser for the report subset of JSON: one
/// top-level object with scalar members and flat object members.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  BenchReport parse() {
    // Members accumulate into locals so key order does not matter (a
    // hand-edited report with "bench" in the middle still parses whole).
    expect('{');
    std::string name;
    std::uint64_t seed = 0;
    double wall_seconds = 0.0;
    std::vector<std::pair<std::string, JsonScalar>> params, values;
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      skip_ws();
      if (key == "bench") {
        name = parse_string();
      } else if (key == "seed") {
        seed = parse_uint64();  // seeds use the full uint64 range
      } else if (key == "wall_seconds") {
        const JsonScalar s = parse_scalar();
        wall_seconds = std::holds_alternative<double>(s)
                           ? std::get<double>(s)
                           : static_cast<double>(std::get<std::int64_t>(s));
      } else if (key == "params") {
        parse_object([&](const std::string& k, JsonScalar v) {
          params.emplace_back(k, std::move(v));
        });
      } else if (key == "values") {
        parse_object([&](const std::string& k, JsonScalar v) {
          values.emplace_back(k, std::move(v));
        });
      } else {
        detail::check_failed(("unknown report key: " + key).c_str(),
                             std::source_location::current());
      }
    }
    skip_ws();
    REMSPAN_CHECK(pos_ == text_.size());
    BenchReport report(name);
    report.set_seed(seed);
    report.set_wall_seconds(wall_seconds);
    for (auto& [k, v] : params) report.param(k, std::move(v));
    for (auto& [k, v] : values) report.value(k, std::move(v));
    return report;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  [[nodiscard]] char peek() {
    REMSPAN_CHECK(pos_ < text_.size());
    return text_[pos_];
  }

  void expect(char c) {
    skip_ws();
    REMSPAN_CHECK(peek() == c);
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      REMSPAN_CHECK(pos_ < text_.size());
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      REMSPAN_CHECK(pos_ < text_.size());
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          REMSPAN_CHECK(pos_ + 4 <= text_.size());
          unsigned code = 0;
          const auto res =
              std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          REMSPAN_CHECK(res.ec == std::errc{} && res.ptr == text_.data() + pos_ + 4);
          REMSPAN_CHECK(code < 0x80);  // the writer only \u-escapes control chars
          out += static_cast<char>(code);
          pos_ += 4;
          break;
        }
        default:
          detail::check_failed("unsupported escape in report string",
                               std::source_location::current());
      }
    }
    return out;
  }

  std::uint64_t parse_uint64() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    std::uint64_t out = 0;
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_, out);
    REMSPAN_CHECK(pos_ > start && res.ec == std::errc{} && res.ptr == text_.data() + pos_);
    return out;
  }

  JsonScalar parse_scalar() {
    skip_ws();
    if (peek() == '"') return parse_string();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '+' || text_[pos_] == '-' || text_[pos_] == '.')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    REMSPAN_CHECK(!token.empty());
    if (token.find_first_of(".eEnN") == std::string::npos) {
      std::int64_t i = 0;
      const auto res = std::from_chars(token.data(), token.data() + token.size(), i);
      REMSPAN_CHECK(res.ec == std::errc{} && res.ptr == token.data() + token.size());
      return i;
    }
    // Strict whole-string parse: trailing garbage ("1.5x"), overflow
    // ("1e999") and non-finite tokens all fail the same CheckError way
    // instead of escaping as raw std::invalid_argument/out_of_range.
    const std::optional<double> d = parse_full_double(token);
    REMSPAN_CHECK(d.has_value());
    return *d;
  }

  template <typename Fn>
  void parse_object(Fn&& on_member) {
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return;
      }
      if (!first) expect(',');
      first = false;
      std::string key = parse_string();
      expect(':');
      on_member(key, parse_scalar());
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  append_escaped(out, s);
  return out;
}

std::string json_scalar_to_string(const JsonScalar& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return double_to_string(*d);
  std::string out;
  append_escaped(out, std::get<std::string>(v));
  return out;
}

void BenchReport::param(const std::string& key, JsonScalar value) {
  upsert(params_, key, std::move(value));
}

void BenchReport::value(const std::string& key, JsonScalar value) {
  upsert(values_, key, std::move(value));
}

std::string BenchReport::to_json() const {
  std::string out = "{\n  \"bench\": ";
  append_escaped(out, name_);
  out += ",\n  \"seed\": " + std::to_string(seed_);
  out += ",\n  \"params\": ";
  append_object(out, params_);
  out += ",\n  \"values\": ";
  append_object(out, values_);
  out += ",\n  \"wall_seconds\": " + double_to_string(wall_seconds_);
  out += "\n}\n";
  return out;
}

void BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  out << to_json();
  REMSPAN_CHECK(out.good());
}

BenchReport parse_report(const std::string& json) { return Parser(json).parse(); }

}  // namespace remspan
