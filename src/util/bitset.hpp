// Dynamic bitset with fast population count and iteration over set bits.
// EdgeSet (the spanner-subset representation) is built on top of this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/prelude.hpp"

namespace remspan {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits, bool value = false)
      : bits_(bits), words_((bits + 63) / 64, value ? ~std::uint64_t{0} : 0) {
    trim();
  }

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) noexcept {
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }
  void reset(std::size_t i) noexcept {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void assign(std::size_t i, bool value) noexcept { value ? set(i) : reset(i); }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void clear_all() noexcept {
    for (auto& w : words_) w = 0;
  }
  void set_all() noexcept {
    for (auto& w : words_) w = ~std::uint64_t{0};
    trim();
  }

  [[nodiscard]] std::size_t count() const noexcept;

  /// Bitwise union / intersection; both operands must have equal size.
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);

  [[nodiscard]] bool operator==(const DynamicBitset& other) const noexcept {
    return bits_ == other.bits_ && words_ == other.words_;
  }

  /// Calls fn(index) for every set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(__builtin_ctzll(word));
        fn(w * 64 + bit);
        word &= word - 1;
      }
    }
  }

 private:
  void trim() noexcept {
    const std::size_t tail = bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace remspan
