// Dynamic bitset with fast population count and iteration over set bits.
// EdgeSet (the spanner-subset representation) is built on top of this.
// AtomicBitset is the concurrent sibling: a fixed-size bitset of
// std::atomic words that many workers set into lock-free (the shared
// spanner union in core/remote_spanner.cpp is its main client).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/prelude.hpp"

namespace remspan {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits, bool value = false)
      : bits_(bits), words_((bits + 63) / 64, value ? ~std::uint64_t{0} : 0) {
    trim();
  }

  /// Adopts a raw word vector (words.size() must match the bit count; the
  /// tail of the last word is masked off). This is how AtomicBitset
  /// snapshots become ordinary bitsets without a bit-by-bit copy.
  [[nodiscard]] static DynamicBitset from_words(std::size_t bits,
                                                std::vector<std::uint64_t> words);

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] std::size_t num_words() const noexcept { return words_.size(); }

  /// The backing words, least-significant bit = lowest index. Word-level
  /// access is what lets downstream consumers (stats, unions) run at
  /// popcount speed instead of probing bit-by-bit.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

  void set(std::size_t i) noexcept {
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }
  void reset(std::size_t i) noexcept {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void assign(std::size_t i, bool value) noexcept { value ? set(i) : reset(i); }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void clear_all() noexcept {
    for (auto& w : words_) w = 0;
  }
  void set_all() noexcept {
    for (auto& w : words_) w = ~std::uint64_t{0};
    trim();
  }

  [[nodiscard]] std::size_t count() const noexcept;

  /// Bitwise union / intersection / difference (and-not); both operands
  /// must have equal size.
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator-=(const DynamicBitset& other);

  [[nodiscard]] bool operator==(const DynamicBitset& other) const noexcept {
    return bits_ == other.bits_ && words_ == other.words_;
  }

  /// Calls fn(index) for every set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(__builtin_ctzll(word));
        fn(w * 64 + bit);
        word &= word - 1;
      }
    }
  }

 private:
  void trim() noexcept {
    const std::size_t tail = bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Fixed-size bitset whose words are std::atomic<std::uint64_t>, for
/// many-writer set-only phases (bits are only ever turned on). Writers use
/// relaxed fetch_or: setting a bit carries no payload another thread reads
/// through that bit, so no release/acquire pairing is needed — publication
/// to the final reader happens once via the fork/join barrier of the
/// parallel loop that drives the writers. snapshot() is therefore only
/// valid after all writers have been joined.
class AtomicBitset {
 public:
  explicit AtomicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64) {}  // atomics value-initialize to 0

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] std::size_t num_words() const noexcept { return words_.size(); }

  void set(std::size_t i) noexcept {
    words_[i >> 6].fetch_or(std::uint64_t{1} << (i & 63), std::memory_order_relaxed);
  }

  void clear(std::size_t i) noexcept {
    words_[i >> 6].fetch_and(~(std::uint64_t{1} << (i & 63)), std::memory_order_relaxed);
  }

  /// ORs a whole prepared word in one RMW — the word-level batching hook:
  /// callers accumulate the bits of one logical unit (e.g. one dominating
  /// tree) into plain masks and pay one atomic op per touched word.
  void or_word(std::size_t word_index, std::uint64_t mask) noexcept {
    if (mask != 0) words_[word_index].fetch_or(mask, std::memory_order_relaxed);
  }

  /// ORs a batch of bit indices (one logical unit, e.g. one tree's edge
  /// ids): `bits` is sorted in place — sorted indices group by word — and
  /// same-word bits merge into one plain mask, so each touched word costs
  /// exactly one relaxed RMW. Returns the number of words actually or'd
  /// (the RMW count — callers report it as union cost, see src/obs).
  std::size_t or_batch(std::vector<std::uint32_t>& bits);

  /// Clears a batch of bit indices with the same word-level discipline as
  /// or_batch: one relaxed fetch_and per touched word. The retire mirror of
  /// or_batch for many-writer clear phases (concurrent disjoint clears are
  /// exact — see test_util.cpp); the incremental spanner engine itself
  /// retires through per-edge refcounts instead, since a bit carries no
  /// owner count.
  void clear_batch(std::vector<std::uint32_t>& bits);

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1u;
  }

  /// Relaxed load of one backing word. Like snapshot(), only meaningful
  /// after the writing phase has been joined — the inter-shard merge
  /// (src/shard/transport.hpp) reads rank-local bitsets word-by-word
  /// through this instead of materializing S full snapshots.
  [[nodiscard]] std::uint64_t word(std::size_t i) const noexcept {
    return words_[i].load(std::memory_order_relaxed);
  }

  /// Copies the current words into a plain DynamicBitset. Only meaningful
  /// after the writing phase has been joined (see class comment).
  [[nodiscard]] DynamicBitset snapshot() const {
    std::vector<std::uint64_t> words(words_.size());
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words[w] = words_[w].load(std::memory_order_relaxed);
    }
    return DynamicBitset::from_words(bits_, std::move(words));
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace remspan
