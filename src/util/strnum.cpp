#include "util/strnum.hpp"

#include <cmath>
#include <stdexcept>

namespace remspan {

std::optional<std::int64_t> parse_full_int(const std::string& text) {
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(text, &pos);
    if (pos == text.size()) return parsed;
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
  return std::nullopt;
}

std::optional<double> parse_full_double(const std::string& text) {
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(text, &pos);
    if (pos == text.size() && std::isfinite(parsed)) return parsed;
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
  return std::nullopt;
}

}  // namespace remspan
