#include "util/options.hpp"

#include <iostream>
#include <sstream>
#include <stdexcept>

#include "util/strnum.hpp"

namespace remspan {

namespace {

std::int64_t parse_int_value(const std::string& name, const std::string& value) {
  if (const auto parsed = parse_full_int(value)) return *parsed;
  throw BadOptionError("option --" + name + " expects an integer, got '" + value + "'");
}

double parse_double_value(const std::string& name, const std::string& value) {
  if (const auto parsed = parse_full_double(value)) return *parsed;
  throw BadOptionError("option --" + name + " expects a number, got '" + value + "'");
}

}  // namespace

Options::Options(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(tokens);
}

Options::Options(std::vector<std::string> tokens) { parse(tokens); }

void Options::parse(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok == "--help" || tok == "-h") {
      help_ = true;
      continue;
    }
    if (tok.rfind("--", 0) != 0) continue;  // ignore positional arguments
    std::string name = tok.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      value = tokens[++i];
    } else {
      value = "1";  // bare flag
    }
    values_[name] = value;
    consumed_[name] = false;
  }
}

std::optional<std::string> Options::lookup(const std::string& name) {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_[name] = true;
  return it->second;
}

std::int64_t Options::get_int(const std::string& name, std::int64_t fallback) {
  described_.emplace_back(name, std::to_string(fallback));
  if (const auto v = lookup(name)) return parse_int_value(name, *v);
  return fallback;
}

double Options::get_double(const std::string& name, double fallback) {
  described_.emplace_back(name, std::to_string(fallback));
  if (const auto v = lookup(name)) return parse_double_value(name, *v);
  return fallback;
}

std::string Options::get_string(const std::string& name, const std::string& fallback) {
  described_.emplace_back(name, fallback);
  if (const auto v = lookup(name)) return *v;
  return fallback;
}

bool Options::get_flag(const std::string& name) {
  described_.emplace_back(name, "off");
  if (const auto v = lookup(name)) return *v != "0" && *v != "false";
  return false;
}

std::int64_t Options::require_int(const std::string& name) {
  described_.emplace_back(name, "(required)");
  if (const auto v = lookup(name)) return parse_int_value(name, *v);
  throw MissingOptionError("missing required option --" + name);
}

double Options::require_double(const std::string& name) {
  described_.emplace_back(name, "(required)");
  if (const auto v = lookup(name)) return parse_double_value(name, *v);
  throw MissingOptionError("missing required option --" + name);
}

std::string Options::require_string(const std::string& name) {
  described_.emplace_back(name, "(required)");
  if (const auto v = lookup(name)) return *v;
  throw MissingOptionError("missing required option --" + name);
}

std::string Options::usage() const {
  std::ostringstream out;
  out << "options:\n";
  for (const auto& [name, fallback] : described_) {
    out << "  --" << name << " (default: " << fallback << ")\n";
  }
  return out.str();
}

std::vector<std::string> Options::unknown_options() const {
  std::vector<std::string> out;
  for (const auto& [name, used] : consumed_) {
    if (!used) out.push_back(name);
  }
  return out;
}

bool Options::reject_unknown(std::ostream& err) const {
  const auto unknown = unknown_options();
  for (const auto& name : unknown) {
    err << "unknown option --" << name << " (--help lists the options)\n";
  }
  return unknown.empty();
}

int cli_main(int (*entry)(int, char**), int argc, char** argv) {
  try {
    return entry(argc, argv);
  } catch (const OptionError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}

}  // namespace remspan
