// Wall-clock measurement helpers for the experiment harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace remspan {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace remspan
