// Least-squares fitting used to check the paper's asymptotic claims:
// fitting log(edges) against log(n) estimates the growth exponent that
// Theorems 1-3 predict (4/3 on random UDGs, 1 on doubling UBGs, 2 for the
// full topology).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace remspan {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Ordinary least squares of y against x. Requires xs.size() == ys.size()
/// and at least two points.
[[nodiscard]] LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fits y = C * x^a by OLS on (log x, log y); returns slope = a. All inputs
/// must be strictly positive.
[[nodiscard]] LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys);

/// Arithmetic mean; returns 0 for empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample standard deviation; returns 0 for fewer than two points.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Exact median (copies and sorts).
[[nodiscard]] double median(std::vector<double> xs);

}  // namespace remspan
