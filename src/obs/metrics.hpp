// The metrics registry: named counters, gauges and fixed-bucket histograms
// with std::atomic cells, plus point-in-time snapshots that diff, merge and
// serialize. This is the passive half of src/obs — instruments write cells,
// drivers snapshot them; nothing here ever feeds back into computation (the
// bit-exactness contract of docs/OBSERVABILITY.md).
//
// Cell updates are relaxed atomics: counts are commutative, no instrument
// reads another instrument's cell, and a snapshot only needs each cell's
// own value, not a consistent cut across cells. Registration (find-or-create
// by name) takes a mutex and is expected off the hot path — hooks publish
// whole-call totals once per engine call, not per inner iteration.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace remspan {
class BenchReport;
}  // namespace remspan

namespace remspan::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Signed level that can move both ways (queue depths, live handles).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two bucketed distribution of unsigned samples. Bucket index is
/// bit_width(value): bucket 0 holds exactly 0, bucket i >= 1 holds
/// [2^(i-1), 2^i). Fixed geometry means snapshots of the same name always
/// diff and merge bucket-by-bucket.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width of uint64 is 0..64

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  /// Smallest sample a bucket can hold (its label in serialized snapshots).
  [[nodiscard]] static constexpr std::uint64_t bucket_floor(std::size_t index) noexcept {
    return index == 0 ? 0 : std::uint64_t{1} << (index - 1);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t bucket(std::size_t index) const noexcept {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Plain-value copy of one histogram (inside a Snapshot).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  [[nodiscard]] bool operator==(const HistogramSnapshot&) const = default;
};

/// A point-in-time copy of a registry's cells. Name-keyed maps keep the
/// serialization deterministic (sorted), so two snapshots of bit-identical
/// runs are byte-identical JSON.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// This snapshot minus `earlier` (per key; keys absent from `earlier`
  /// count as zero). Counters and histogram cells are monotone, so a
  /// negative delta means the snapshots are from different runs — checked.
  [[nodiscard]] Snapshot diff(const Snapshot& earlier) const;

  /// Adds `other` into this snapshot (union of keys, cells summed) — the
  /// aggregation primitive for per-shard or per-run telemetry.
  void merge(const Snapshot& other);

  /// Full snapshot as a JSON document (the --metrics-out /
  /// remspan_metrics_snapshot format; see docs/OBSERVABILITY.md).
  [[nodiscard]] std::string to_json() const;

  /// Flattens counters, gauges and histogram count/sum into a BenchReport's
  /// values ("<prefix><name>" keys; histograms add _count/_sum suffixes).
  void append_to(BenchReport& report, const std::string& prefix = "") const;

  [[nodiscard]] bool operator==(const Snapshot&) const = default;
};

/// Named-instrument registry. Instruments live as long as the registry and
/// keep stable addresses, so hooks may cache the reference returned by
/// counter()/gauge()/histogram() for the duration of a call.
class Registry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every cell (instrument set is kept — addresses stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace remspan::obs
