// The structured trace layer: a ring-buffered stream of phase spans,
// instant events and counter samples, serialized as Chrome trace_event
// JSON (load in Perfetto or chrome://tracing; schema in
// docs/OBSERVABILITY.md).
//
// Two kinds of lanes share one buffer, split by pid:
//   pid 1 (engine)    — tid is a small per-thread lane id, ts is wall-clock
//                       microseconds since the process epoch;
//   pid 2 (simulator) — tid is the NodeId (or 0 for network-wide rows), ts
//                       is the deterministic round number scaled to
//                       kRoundMicros. Simulator events carry no wall-clock
//                       field at all, so sim-only traces of bit-identical
//                       runs are byte-identical and golden-diffable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/json_report.hpp"

namespace remspan::obs {

/// Chrome trace_event phases used by this repo.
inline constexpr char kPhaseBegin = 'B';    ///< span open (paired with 'E')
inline constexpr char kPhaseEnd = 'E';      ///< span close
inline constexpr char kPhaseInstant = 'i';  ///< point event
inline constexpr char kPhaseCounter = 'C';  ///< counter sample (args = series)
inline constexpr char kPhaseMeta = 'M';     ///< metadata (lane names)

/// Process/thread ids of the two lane families (trace.hpp header comment).
inline constexpr std::uint32_t kEnginePid = 1;
inline constexpr std::uint32_t kSimPid = 2;

/// One simulator round rendered as this many trace microseconds, so round
/// granularity is visible when a trace is opened in Perfetto.
inline constexpr double kRoundMicros = 1000.0;

/// One trace_event record. `args` members become the event's "args" object
/// (numbers and strings, escaped by the one json_quote routine).
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = kPhaseInstant;
  double ts = 0.0;  ///< microseconds (wall for engine lanes, rounds for sim)
  std::uint32_t pid = kEnginePid;
  std::uint32_t tid = 0;
  std::vector<std::pair<std::string, JsonScalar>> args;

  [[nodiscard]] bool operator==(const TraceEvent&) const = default;
};

/// Bounded in-memory event sink. When full, new events are dropped (and
/// counted) rather than evicting old ones: the head of a trace explains the
/// tail, and a deterministic prefix is what golden diffs need.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  void emit(TraceEvent event);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::vector<TraceEvent> events() const;
  void clear();

  /// The buffered stream as one Chrome trace_event JSON document.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; returns false (with *error set) on I/O
  /// failure instead of throwing — trace emission is best-effort by design.
  bool write_file(const std::string& path, std::string* error = nullptr) const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace remspan::obs
