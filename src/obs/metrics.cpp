#include "obs/metrics.hpp"

#include <utility>

#include "util/json_report.hpp"
#include "util/prelude.hpp"

namespace remspan::obs {

namespace {

/// Bucket labels are the bucket floors, so a serialized histogram reads as
/// "samples >= floor (up to the next floor)".
void append_histogram_json(std::string& out, const HistogramSnapshot& h) {
  out += "{\"count\": " + std::to_string(h.count);
  out += ", \"sum\": " + std::to_string(h.sum);
  out += ", \"buckets\": {";
  bool first = true;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += json_quote(std::to_string(Histogram::bucket_floor(i)));
    out += ": " + std::to_string(h.buckets[i]);
  }
  out += "}}";
}

}  // namespace

Snapshot Snapshot::diff(const Snapshot& earlier) const {
  Snapshot out;
  for (const auto& [name, value] : counters) {
    const auto it = earlier.counters.find(name);
    const std::uint64_t base = it == earlier.counters.end() ? 0 : it->second;
    REMSPAN_CHECK(value >= base);
    out.counters.emplace(name, value - base);
  }
  for (const auto& [name, value] : gauges) {
    const auto it = earlier.gauges.find(name);
    const std::int64_t base = it == earlier.gauges.end() ? 0 : it->second;
    out.gauges.emplace(name, value - base);
  }
  for (const auto& [name, h] : histograms) {
    const auto it = earlier.histograms.find(name);
    HistogramSnapshot d = h;
    if (it != earlier.histograms.end()) {
      const HistogramSnapshot& base = it->second;
      REMSPAN_CHECK(h.count >= base.count && h.sum >= base.sum);
      d.count -= base.count;
      d.sum -= base.sum;
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        REMSPAN_CHECK(h.buckets[i] >= base.buckets[i]);
        d.buckets[i] -= base.buckets[i];
      }
    }
    out.histograms.emplace(name, d);
  }
  return out;
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, h] : other.histograms) {
    HistogramSnapshot& mine = histograms[name];
    mine.count += h.count;
    mine.sum += h.sum;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) mine.buckets[i] += h.buckets[i];
  }
}

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ", ";
    first = false;
    out += json_quote(name) + ": " + std::to_string(value);
  }
  out += "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ", ";
    first = false;
    out += json_quote(name) + ": " + std::to_string(value);
  }
  out += "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ", ";
    first = false;
    out += json_quote(name) + ": ";
    append_histogram_json(out, h);
  }
  out += "}\n}\n";
  return out;
}

void Snapshot::append_to(BenchReport& report, const std::string& prefix) const {
  for (const auto& [name, value] : counters) {
    report.value(prefix + name, static_cast<std::int64_t>(value));
  }
  for (const auto& [name, value] : gauges) report.value(prefix + name, value);
  for (const auto& [name, h] : histograms) {
    report.value(prefix + name + "_count", static_cast<std::int64_t>(h.count));
    report.value(prefix + name + "_sum", static_cast<std::int64_t>(h.sum));
  }
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  for (const auto& [name, c] : counters_) out.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) out.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s;
    s.count = h->count();
    s.sum = h->sum();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) s.buckets[i] = h->bucket(i);
    out.histograms.emplace(name, s);
  }
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace remspan::obs
