#include "obs/obs.hpp"

#include <atomic>

namespace remspan::obs {

namespace {

std::atomic<Registry*> g_metrics{nullptr};
std::atomic<TraceBuffer*> g_trace{nullptr};
std::atomic<std::uint32_t> g_next_lane{0};

/// The process trace epoch: started on first use, shared by every engine
/// lane so spans from different threads line up on one time axis.
const Timer& process_epoch() noexcept {
  static const Timer epoch;
  return epoch;
}

}  // namespace

Registry* metrics() noexcept { return g_metrics.load(std::memory_order_acquire); }

TraceBuffer* trace() noexcept { return g_trace.load(std::memory_order_acquire); }

void install(Registry* m, TraceBuffer* t) noexcept {
  g_metrics.store(m, std::memory_order_release);
  g_trace.store(t, std::memory_order_release);
}

void uninstall() noexcept { install(nullptr, nullptr); }

std::uint32_t engine_lane() noexcept {
  thread_local const std::uint32_t lane = g_next_lane.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

double process_micros() noexcept { return process_epoch().micros(); }

}  // namespace remspan::obs
