// The sink hub of src/obs: process-global metric/trace sink pointers, null
// by default, plus the span helpers every instrumented call site uses.
//
// The contract that keeps observability safe in a bit-exact codebase
// (docs/OBSERVABILITY.md):
//   - sinks are pointer-null by default, so a disabled hook is one relaxed
//     atomic load and a branch (pinned by BM_ObsSpanDisabled);
//   - nothing an instrument records is ever read back by the algorithms —
//     engine and simulator outputs are bit-identical with sinks installed
//     or not (pinned by the ObsEquivalence suite);
//   - wall-clock only ever appears in engine-lane trace timestamps and
//     span seconds, never in metric cells, so metric snapshots of
//     bit-identical runs are byte-identical.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace remspan::obs {

/// The installed sinks (either may be null). Hooks call these on every hit;
/// both are a single relaxed-ish atomic load.
[[nodiscard]] Registry* metrics() noexcept;
[[nodiscard]] TraceBuffer* trace() noexcept;

/// Installs / clears the process-global sinks. The caller keeps ownership
/// and must uninstall before destroying the sinks; installation is not a
/// synchronization point for in-flight hooks, so install before starting
/// the work being observed (drivers do this at startup).
void install(Registry* m, TraceBuffer* t) noexcept;
void uninstall() noexcept;

/// Scoped install/uninstall for tests and one-shot drivers.
class ScopedSinks {
 public:
  ScopedSinks(Registry* m, TraceBuffer* t) noexcept { install(m, t); }
  ~ScopedSinks() { uninstall(); }
  ScopedSinks(const ScopedSinks&) = delete;
  ScopedSinks& operator=(const ScopedSinks&) = delete;
};

/// Small dense per-thread lane id for engine-side trace events (tid field).
[[nodiscard]] std::uint32_t engine_lane() noexcept;

/// Wall-clock microseconds since the process-wide trace epoch (the ts field
/// of engine-lane events).
[[nodiscard]] double process_micros() noexcept;

/// RAII phase span: always a stopwatch (seconds() replaces the ad-hoc
/// util/timer.hpp call sites), and additionally a B/E trace span on the
/// current engine lane when a trace sink is installed. Name/category are
/// borrowed pointers and must outlive the span (string literals at every
/// call site).
class PhaseSpan {
 public:
  explicit PhaseSpan(const char* name, const char* cat = "engine") noexcept
      : name_(name), cat_(cat) {
    if (TraceBuffer* t = trace()) {
      traced_ = true;
      t->emit(TraceEvent{name_, cat_, kPhaseBegin, process_micros(), kEnginePid, engine_lane(), {}});
    }
  }

  ~PhaseSpan() {
    if (!traced_) return;
    if (TraceBuffer* t = trace()) {
      t->emit(TraceEvent{name_, cat_, kPhaseEnd, process_micros(), kEnginePid, engine_lane(), {}});
    }
  }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  /// Elapsed wall seconds since construction.
  [[nodiscard]] double seconds() const noexcept { return timer_.seconds(); }
  [[nodiscard]] double millis() const noexcept { return timer_.millis(); }

  /// Restarts the stopwatch (the trace span is not reopened).
  void reset() noexcept { timer_.reset(); }

 private:
  const char* name_;
  const char* cat_;
  Timer timer_;
  bool traced_ = false;
};

/// Emits an instant event on the current engine lane (no-op when disabled).
inline void instant(const char* name, const char* cat = "engine") {
  if (TraceBuffer* t = trace()) {
    t->emit(TraceEvent{name, cat, kPhaseInstant, process_micros(), kEnginePid, engine_lane(), {}});
  }
}

/// One-shot metric hooks: a relaxed load and a branch when no registry is
/// installed, a name lookup + relaxed cell update when one is. Call sites
/// with a hot inner loop should still cache the instrument reference; these
/// are for whole-call totals (the service's ingestion/publication path).
inline void count(const char* name, std::uint64_t n = 1) {
  if (Registry* m = metrics()) m->counter(name).add(n);
}
inline void gauge_set(const char* name, std::int64_t v) {
  if (Registry* m = metrics()) m->gauge(name).set(v);
}
inline void gauge_add(const char* name, std::int64_t n) {
  if (Registry* m = metrics()) m->gauge(name).add(n);
}
inline void record(const char* name, std::uint64_t v) {
  if (Registry* m = metrics()) m->histogram(name).record(v);
}

}  // namespace remspan::obs
