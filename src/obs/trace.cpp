#include "obs/trace.hpp"

#include <fstream>
#include <limits>
#include <sstream>

namespace remspan::obs {

namespace {

/// Trace timestamps forward through the bench-report double formatter so a
/// deterministic ts (sim rounds) serializes identically run-to-run, but
/// without the ".0" suffix rule — Chrome's ts is just a number.
std::string ts_to_string(double ts) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << ts;
  return os.str();
}

void append_event_json(std::string& out, const TraceEvent& e) {
  out += "{\"name\": " + json_quote(e.name);
  out += ", \"cat\": " + json_quote(e.cat.empty() ? std::string("remspan") : e.cat);
  out += ", \"ph\": " + json_quote(std::string(1, e.ph));
  out += ", \"ts\": " + ts_to_string(e.ts);
  out += ", \"pid\": " + std::to_string(e.pid);
  out += ", \"tid\": " + std::to_string(e.tid);
  if (!e.args.empty()) {
    out += ", \"args\": {";
    bool first = true;
    for (const auto& [key, value] : e.args) {
      if (!first) out += ", ";
      first = false;
      out += json_quote(key) + ": " + json_scalar_to_string(value);
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  events_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void TraceBuffer::emit(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::size_t TraceBuffer::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t TraceBuffer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceBuffer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

std::string TraceBuffer::to_json() const {
  const std::vector<TraceEvent> copy = events();
  const std::uint64_t lost = dropped();
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  for (const TraceEvent& e : copy) {
    if (!first) out += ",\n";
    first = false;
    append_event_json(out, e);
  }
  out += "\n], \"displayTimeUnit\": \"ms\"";
  out += ", \"remspan_dropped_events\": " + std::to_string(lost);
  out += "}\n";
  return out;
}

bool TraceBuffer::write_file(const std::string& path, std::string* error) const {
  std::ofstream out(path);
  out << to_json();
  if (!out.good()) {
    if (error != nullptr) *error = "cannot write trace file: " + path;
    return false;
  }
  return true;
}

}  // namespace remspan::obs
