// bench_diff — regression gate over two BENCH_<name>.json reports.
//
//   bench_diff <baseline.json> <current.json> [--threshold 0.05]
//              [--time-threshold 0.5] [--ignore key1,key2]
//
// The two reports must be comparable: same bench name, same seed, same
// params (exit 2 otherwise — diffing different workloads is meaningless).
// Every numeric value key present in both is then compared:
//
//   - timing keys (name contains "seconds"): one-sided — only slower than
//     baseline * (1 + time-threshold) is a regression; timings are noisy,
//     so the default gate is loose (50%).
//   - all other keys: two-sided drift check against --threshold. Benches
//     run at a fixed seed, so structural outputs (edge counts, exponents)
//     are deterministic; ANY drift beyond the tolerance means the code
//     changed behavior, faster or not.
//
// Value keys present in the baseline but missing from the current report
// count as regressions (a measurement silently disappeared). New keys in
// the current report are reported but do not fail the gate.
//
// Exit codes: 0 = ok, 1 = regression(s), 2 = not comparable / IO error.
#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/json_report.hpp"
#include "util/options.hpp"
#include "util/prelude.hpp"
#include "util/table.hpp"

namespace remspan {
namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::optional<double> as_number(const JsonScalar& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  return std::nullopt;
}

std::optional<JsonScalar> find_key(
    const std::vector<std::pair<std::string, JsonScalar>>& entries, const std::string& key) {
  for (const auto& [k, v] : entries) {
    if (k == key) return v;
  }
  return std::nullopt;
}

bool is_timing_key(const std::string& key) {
  return key.find("seconds") != std::string::npos;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

constexpr const char* kUsage =
    "usage: bench_diff <baseline.json> <current.json> [--threshold 0.05]\n"
    "                  [--time-threshold 0.5] [--ignore key1,key2]\n";

int run(int argc, char** argv) {
  if (argc > 1 && (std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h")) {
    std::cout << kUsage;
    return 0;
  }
  if (argc < 3 || std::string(argv[1]).rfind("--", 0) == 0 ||
      std::string(argv[2]).rfind("--", 0) == 0) {
    std::cerr << kUsage;
    return 2;
  }
  const std::string baseline_path = argv[1];
  const std::string current_path = argv[2];
  Options opts(argc - 2, argv + 2);
  const double threshold = opts.get_double("threshold", 0.05);
  const double time_threshold = opts.get_double("time-threshold", 0.5);
  const auto ignored = split_csv(opts.get_string("ignore", ""));
  if (opts.help_requested()) {
    std::cout << kUsage;
    return 0;
  }
  if (const auto unknown = opts.unknown_options(); !unknown.empty()) {
    // A typo'd flag must not silently gate with default thresholds.
    std::cerr << "bench_diff: unknown option(s):";
    for (const auto& name : unknown) std::cerr << " --" << name;
    std::cerr << "\n";
    return 2;
  }

  const auto baseline_text = read_file(baseline_path);
  const auto current_text = read_file(current_path);
  if (!baseline_text || !current_text) {
    std::cerr << "bench_diff: cannot read "
              << (!baseline_text ? baseline_path : current_path) << "\n";
    return 2;
  }
  BenchReport baseline("?");
  BenchReport current("?");
  try {
    baseline = parse_report(*baseline_text);
    current = parse_report(*current_text);
  } catch (const CheckError& e) {
    std::cerr << "bench_diff: malformed report: " << e.what() << "\n";
    return 2;
  }

  // Comparability gate: same bench, same seed, same workload params.
  if (baseline.name() != current.name()) {
    std::cerr << "bench_diff: bench name mismatch: '" << baseline.name() << "' vs '"
              << current.name() << "'\n";
    return 2;
  }
  if (baseline.seed() != current.seed()) {
    std::cerr << "bench_diff: seed mismatch: " << baseline.seed() << " vs " << current.seed()
              << "\n";
    return 2;
  }
  for (const auto& [key, value] : baseline.params()) {
    const auto cur = find_key(current.params(), key);
    if (!cur || !(*cur == value)) {
      std::cerr << "bench_diff: param '" << key << "' differs ("
                << json_scalar_to_string(value) << " vs "
                << (cur ? json_scalar_to_string(*cur) : std::string("<missing>")) << ")\n";
      return 2;
    }
  }
  // Symmetric check: a param only the current report knows (e.g. a workload
  // knob added after the baseline was recorded) also means the workloads
  // are not comparable — the baseline needs refreshing.
  for (const auto& [key, value] : current.params()) {
    if (!find_key(baseline.params(), key)) {
      std::cerr << "bench_diff: param '" << key << "' (" << json_scalar_to_string(value)
                << ") missing from baseline — refresh the baseline report\n";
      return 2;
    }
  }

  const auto is_ignored = [&](const std::string& key) {
    for (const auto& k : ignored) {
      if (k == key) return true;
    }
    return false;
  };

  Table table({"value", "baseline", "current", "delta", "verdict"});
  std::vector<std::string> regressions;
  // wall_seconds is a top-level report field, not a values() entry; fold it
  // into the comparison as a timing key so the one-sided gate covers it
  // (and so CI's --ignore wall_seconds has a real effect).
  std::vector<std::pair<std::string, JsonScalar>> baseline_values(baseline.values());
  std::vector<std::pair<std::string, JsonScalar>> current_values(current.values());
  baseline_values.emplace_back("wall_seconds", baseline.wall_seconds());
  current_values.emplace_back("wall_seconds", current.wall_seconds());
  for (const auto& [key, base_value] : baseline_values) {
    if (is_ignored(key)) continue;
    const auto cur_value = find_key(current_values, key);
    if (!cur_value) {
      table.add_row({key, json_scalar_to_string(base_value), "<missing>", "-", "REGRESSION"});
      regressions.push_back(key + " (missing from current report)");
      continue;
    }
    const auto base_num = as_number(base_value);
    const auto cur_num = as_number(*cur_value);
    if (!base_num || !cur_num) {
      // Non-numeric (string) values must match exactly.
      const bool same = *cur_value == base_value;
      table.add_row({key, json_scalar_to_string(base_value), json_scalar_to_string(*cur_value),
                     "-", same ? "ok" : "REGRESSION"});
      if (!same) regressions.push_back(key + " (string value changed)");
      continue;
    }
    const double denom = std::max(std::abs(*base_num), 1e-12);
    const double rel = (*cur_num - *base_num) / denom;
    const bool timing = is_timing_key(key);
    const bool bad = timing ? rel > time_threshold : std::abs(rel) > threshold;
    std::ostringstream delta;
    delta << (rel >= 0 ? "+" : "") << format_double(100.0 * rel, 2) << "%";
    table.add_row({key, json_scalar_to_string(base_value), json_scalar_to_string(*cur_value),
                   delta.str(), bad ? "REGRESSION" : "ok"});
    if (bad) {
      std::ostringstream why;
      why << key << " " << delta.str() << " (limit "
          << format_double(100.0 * (timing ? time_threshold : threshold), 1) << "%"
          << (timing ? ", one-sided timing" : "") << ")";
      regressions.push_back(why.str());
    }
  }
  for (const auto& [key, value] : current_values) {
    if (!is_ignored(key) && !find_key(baseline_values, key)) {
      table.add_row({key, "<new>", json_scalar_to_string(value), "-", "ok"});
    }
  }

  std::cout << "bench_diff: " << baseline.name() << " (seed " << baseline.seed() << ")\n"
            << "  baseline: " << baseline_path << "\n  current:  " << current_path << "\n\n";
  table.print(std::cout);
  if (regressions.empty()) {
    std::cout << "\nOK — no regression past thresholds (values "
              << format_double(100.0 * threshold, 1) << "%, timings "
              << format_double(100.0 * time_threshold, 1) << "% one-sided)\n";
    return 0;
  }
  std::cout << "\n" << regressions.size() << " regression(s):\n";
  for (const auto& r : regressions) std::cout << "  - " << r << "\n";
  return 1;
}

}  // namespace
}  // namespace remspan

int main(int argc, char** argv) { return remspan::cli_main(remspan::run, argc, argv); }
