#!/usr/bin/env sh
# Fails (exit 1) when a relative markdown link in README.md or docs/*.md
# points at a file that does not exist. External links (http/https/mailto)
# and pure in-page anchors (#...) are skipped; a link's own #anchor suffix
# is stripped before the existence check. Fenced code blocks (```) are
# ignored so illustrative links in examples are not treated as real, and
# targets are read line-wise so spaces in a path do not split it.
#
# Usage: tools/check_doc_links.sh [repo-root]   (default: cwd)
set -u

root="${1:-.}"
status=0

for doc in "$root"/README.md "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Strip fenced code blocks, then extract every (target) of an inline
  # markdown link [text](target), one per line.
  dead=$(awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$doc" \
    | grep -oE '\]\([^)]+\)' \
    | sed -e 's/^](//' -e 's/)$//' \
    | while IFS= read -r target; do
        case "$target" in
          http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        [ -e "$dir/$path" ] || echo "$target"
      done)
  if [ -n "$dead" ]; then
    printf '%s\n' "$dead" | while IFS= read -r target; do
      echo "dead link in $doc: $target"
    done
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "doc links OK"
fi
exit $status
