// trace_check: structural validator for the observability artifacts that
// remspan_tool writes (--trace-out / --metrics-out) and that CI archives.
//
// Two modes:
//
//   trace_check <trace.json>             validate a Chrome trace_event file
//   trace_check --metrics <metrics.json> validate a metrics snapshot
//
// Trace mode checks that the file is well-formed JSON, that traceEvents is
// an array of objects each carrying the required keys (name, ph, ts, pid,
// tid), that every phase is one the emitter produces (B/E/i/C/M), and that
// B/E spans are balanced per (pid, tid) lane with matching names. Metrics
// mode checks the counters/gauges/histograms envelope and that every
// histogram's bucket tallies sum exactly to its count.
//
// Exit codes: 0 valid, 1 invalid (findings on stdout), 2 usage/IO error.
//
// Like remspan_lint, this tool is deliberately dependency-free — it builds
// with nothing but a C++20 compiler, so the CI step that runs it needs no
// project library. The JSON parser below is a strict recursive-descent
// reader of the full grammar; it exists because the project's BenchReport
// parser accepts only the flat report subset, which trace files are not.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON document model. Object members keep file order so findings
// can reference positions meaningfully.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> items;                            // kArray

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after top-level value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("byte " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control byte inside string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += decode_unicode_escape(); break;
        default: fail("unknown escape");
      }
    }
  }

  char decode_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4u;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    // The emitters only produce \u00XX for control bytes; anything wider is
    // legal JSON but substituted, since validation never inspects it.
    return code < 0x80 ? static_cast<char>(code) : '?';
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      return pos_ > before;
    };
    if (!digits()) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("bad number: missing fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digits()) fail("bad number: missing exponent digits");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      // remspan-lint: allow(R2) the grammar above already rejected every
      // garbage suffix strnum guards against, and this tool is
      // dependency-free by design — it cannot link util/strnum.
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("number out of range");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Validation. Findings accumulate so one run reports everything wrong.
class Checker {
 public:
  void flag(const std::string& where, const std::string& what) {
    std::printf("%s: %s\n", where.c_str(), what.c_str());
    ++violations_;
  }

  [[nodiscard]] int violations() const { return violations_; }

 private:
  int violations_ = 0;
};

bool is_string(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kString;
}
bool is_number(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kNumber;
}
bool is_object(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kObject;
}

void check_trace(const JsonValue& root, Checker& check) {
  if (root.kind != JsonValue::Kind::kObject) {
    check.flag("trace", "top-level value is not an object");
    return;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    check.flag("trace", "missing traceEvents array");
    return;
  }
  const JsonValue* unit = root.find("displayTimeUnit");
  if (!is_string(unit)) check.flag("trace", "missing displayTimeUnit string");

  // Per-lane span stacks: every E must close the most recent B with the
  // same name on the same (pid, tid) lane, and every lane must drain.
  std::map<std::pair<double, double>, std::vector<std::string>> lanes;
  const std::string phases = "BEiCM";
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    const JsonValue& e = events->items[i];
    const std::string where = "traceEvents[" + std::to_string(i) + "]";
    if (e.kind != JsonValue::Kind::kObject) {
      check.flag(where, "event is not an object");
      continue;
    }
    const JsonValue* name = e.find("name");
    const JsonValue* ph = e.find("ph");
    const JsonValue* ts = e.find("ts");
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    if (!is_string(name)) check.flag(where, "missing string key: name");
    if (!is_number(ts)) check.flag(where, "missing numeric key: ts");
    if (!is_number(pid)) check.flag(where, "missing numeric key: pid");
    if (!is_number(tid)) check.flag(where, "missing numeric key: tid");
    if (!is_string(ph) || ph->string.size() != 1 ||
        phases.find(ph->string[0]) == std::string::npos) {
      check.flag(where, "ph is not one of B/E/i/C/M");
      continue;
    }
    if (!is_string(name) || !is_number(pid) || !is_number(tid)) continue;
    auto& stack = lanes[{pid->number, tid->number}];
    if (ph->string[0] == 'B') {
      stack.push_back(name->string);
    } else if (ph->string[0] == 'E') {
      if (stack.empty()) {
        check.flag(where, "E event with no open span on its lane");
      } else {
        if (stack.back() != name->string) {
          check.flag(where, "E event closes \"" + stack.back() + "\" under the name \"" +
                                name->string + "\"");
        }
        stack.pop_back();
      }
    }
  }
  for (const auto& [lane, stack] : lanes) {
    if (stack.empty()) continue;
    check.flag("trace", "lane pid=" + std::to_string(lane.first) +
                            " tid=" + std::to_string(lane.second) + " ends with " +
                            std::to_string(stack.size()) + " unclosed span(s), first \"" +
                            stack.front() + "\"");
  }
}

void check_metric_map(const JsonValue* map, const std::string& what, Checker& check) {
  if (!is_object(map)) {
    check.flag("metrics", "missing " + what + " object");
    return;
  }
  for (const auto& [name, value] : map->members) {
    if (value.kind != JsonValue::Kind::kNumber) {
      check.flag("metrics." + what + "." + name, "value is not a number");
    }
  }
}

void check_metrics(const JsonValue& root, Checker& check) {
  if (root.kind != JsonValue::Kind::kObject) {
    check.flag("metrics", "top-level value is not an object");
    return;
  }
  check_metric_map(root.find("counters"), "counters", check);
  check_metric_map(root.find("gauges"), "gauges", check);
  const JsonValue* histograms = root.find("histograms");
  if (!is_object(histograms)) {
    check.flag("metrics", "missing histograms object");
    return;
  }
  for (const auto& [name, h] : histograms->members) {
    const std::string where = "metrics.histograms." + name;
    if (h.kind != JsonValue::Kind::kObject) {
      check.flag(where, "histogram is not an object");
      continue;
    }
    const JsonValue* count = h.find("count");
    const JsonValue* sum = h.find("sum");
    const JsonValue* buckets = h.find("buckets");
    if (!is_number(count)) check.flag(where, "missing numeric key: count");
    if (!is_number(sum)) check.flag(where, "missing numeric key: sum");
    if (!is_object(buckets)) {
      check.flag(where, "missing buckets object");
      continue;
    }
    double bucket_total = 0.0;
    for (const auto& [floor, tally] : buckets->members) {
      if (tally.kind != JsonValue::Kind::kNumber) {
        check.flag(where + ".buckets." + floor, "tally is not a number");
        continue;
      }
      bucket_total += tally.number;
    }
    if (is_number(count) && bucket_total != count->number) {
      check.flag(where, "bucket tallies sum to " + std::to_string(bucket_total) +
                            " but count is " + std::to_string(count->number));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics_mode = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics") {
      metrics_mode = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "usage: trace_check [--metrics] <file.json>\n");
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: trace_check [--metrics] <file.json>\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: trace_check [--metrics] <file.json>\n");
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  Checker check;
  try {
    const JsonValue root = JsonParser(text).parse();
    if (metrics_mode) {
      check_metrics(root, check);
    } else {
      check_trace(root, check);
    }
  } catch (const std::exception& e) {
    check.flag(path, std::string("not well-formed JSON: ") + e.what());
  }
  if (check.violations() > 0) {
    std::printf("trace_check: %s: %d violation(s)\n", path.c_str(), check.violations());
    return 1;
  }
  std::printf("trace_check: %s: OK\n", path.c_str());
  return 0;
}
