// remspan_lint — the project-contract static analyzer (docs/STATIC_ANALYSIS.md).
//
// The repo's bit-exact determinism rests on a handful of written contracts
// (strict number parsing via util/strnum only, no exception across the C
// ABI, no iteration-order-dependent containers in build paths, ...). This
// tool makes them machine-checked per source file. It is deliberately
// dependency-free: a small comment/string/raw-string-aware C++ lexer plus
// token-pattern rules, not a compiler frontend — precise enough for this
// codebase, fast enough to run as a ctest on every build.
//
// Usage:
//   remspan_lint --root DIR          walk DIR/{src,include,bench,examples,tools}
//   remspan_lint [--root DIR] FILE.. lint exactly FILE.. (fixture self-tests)
//   remspan_lint --list-rules        print the rule table
//
// Exit codes: 0 tree clean, 1 violations found, 2 usage or I/O error.
//
// Suppressions: a violation on line L is suppressed by a comment on L or
// L-1 of the form `remspan-lint: allow(R6) <justification>` (the directive
// must open the comment). The justification is mandatory; an allow()
// without one is itself a violation (R0). Fixture files may carry
// `remspan-lint: treat-as src/api/remspan_c.cpp` to exercise path-scoped
// rules from outside the real tree.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

struct RuleInfo {
  const char* id;
  const char* name;
  const char* summary;
};

constexpr RuleInfo kRules[] = {
    {"R0", "annotation-grammar",
     "every 'remspan-lint: allow(...)' must carry a written justification"},
    {"R1", "c-abi-exception-wall",
     "every function in the C ABI files (src/api/remspan_c.cpp, "
     "src/api/remspan_service_c.cpp) opens with a top-level try and "
     "ends in a catch-all: no exception may cross extern \"C\""},
    {"R2", "strict-number-parsing",
     "std::sto*/ato*/strto* are banned outside util/strnum: strict "
     "whole-string parsing via parse_full_int/parse_full_double only"},
    {"R3", "no-exit",
     "std::exit is banned outside the cli_main wrapper (src/util/options.cpp): "
     "error paths throw OptionError or return status codes"},
    {"R4", "no-assert",
     "assert() is banned in library code (src/, include/): use the always-on "
     "REMSPAN_CHECK instead"},
    {"R5", "determinism",
     "rand()/srand(), std::random_device and time-based seeding are banned "
     "everywhere: all randomness flows from an explicitly seeded Rng"},
    {"R6", "unordered-iteration-annotation",
     "iterating an unordered container inside the bit-exact subsystems "
     "(src/{core,graph,dynamic,baseline,sim}) requires an inline "
     "'remspan-lint: allow(R6)' justification stating why iteration order "
     "cannot leak into output"},
    {"R7", "wall-clock-discipline",
     "raw std::chrono clock reads (steady_clock/system_clock/"
     "high_resolution_clock ::now) are banned outside util/timer.hpp and "
     "src/obs: wall time flows through Timer / obs::PhaseSpan, keeping it "
     "out of every deterministic stream"},
};

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  Tok kind;
  std::string text;
  int line;
};

/// Comment text per line (joined when several share a line), used for the
/// suppression and treat-as directives. A block comment is attributed to
/// every line it spans.
using CommentMap = std::map<int, std::string>;

struct LexResult {
  std::vector<Token> tokens;
  CommentMap comments;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

LexResult lex(const std::string& src) {
  LexResult out;
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = src.size();

  auto record_comment = [&](int at, const std::string& text) {
    auto& slot = out.comments[at];
    if (!slot.empty()) slot += ' ';
    slot += text;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      record_comment(line, src.substr(start, i - start));
      continue;
    }
    // Block comment (attributed to every spanned line).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int first_line = line;
      i += 2;
      const std::size_t start = i;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      const std::string text = src.substr(start, i - start);
      for (int l = first_line; l <= line; ++l) record_comment(l, text);
      if (i + 1 < n) i += 2;  // consume the closing */
      continue;
    }
    // String literal (and raw strings via the identifier path below).
    if (c == '"') {
      const int at = line;
      ++i;
      std::string text;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          text += src[i + 1];
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;  // unterminated; keep line counts sane
        text += src[i++];
      }
      if (i < n) ++i;
      out.tokens.push_back({Tok::kString, text, at});
      continue;
    }
    if (c == '\'') {
      const int at = line;
      ++i;
      std::string text;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          text += src[i + 1];
          i += 2;
          continue;
        }
        text += src[i++];
      }
      if (i < n) ++i;
      out.tokens.push_back({Tok::kChar, text, at});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const int at = line;
      const std::size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' || d == '\'') {
          ++i;
          continue;
        }
        // Exponent signs: 1e+9, 0x1p-3.
        if ((d == '+' || d == '-') && i > start &&
            (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' || src[i - 1] == 'P')) {
          ++i;
          continue;
        }
        break;
      }
      out.tokens.push_back({Tok::kNumber, src.substr(start, i - start), at});
      continue;
    }
    if (ident_start(c)) {
      const int at = line;
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      std::string text = src.substr(start, i - start);
      // Raw string literal: R"( ... )", incl. u8R / uR / UR / LR prefixes.
      const bool raw_prefix =
          text == "R" || text == "u8R" || text == "uR" || text == "UR" || text == "LR";
      if (raw_prefix && i < n && src[i] == '"') {
        ++i;
        std::string delim;
        while (i < n && src[i] != '(') delim += src[i++];
        if (i < n) ++i;  // consume (
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = src.find(closer, i);
        std::string body;
        if (end == std::string::npos) {
          body = src.substr(i);
          i = n;
        } else {
          body = src.substr(i, end - i);
          i = end + closer.size();
        }
        line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
        out.tokens.push_back({Tok::kString, body, at});
        continue;
      }
      out.tokens.push_back({Tok::kIdent, std::move(text), at});
      continue;
    }
    // Punctuation. '::' and '->' are kept as single tokens: the rules need
    // to tell qualified names apart and must not mistake the '>' of '->'
    // for a template-argument close.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({Tok::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({Tok::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Diagnostics and suppressions
// ---------------------------------------------------------------------------

struct Diagnostic {
  std::string path;  // lint path (root-relative, forward slashes)
  int line;
  std::string rule;
  std::string message;
};

struct Allow {
  std::set<std::string> rules;
  bool has_justification;
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parses the directive opening one line's comment text, if any. A
/// directive only counts when it is the first thing in the comment — prose
/// merely *mentioning* the marker (docs, this very tool) is inert. Returns
/// the allow directive; fills `treat_as` for a treat-as directive.
std::vector<Allow> parse_directives(const std::string& comment,
                                    std::optional<std::string>* treat_as) {
  const std::string marker = "remspan-lint:";
  const std::string trimmed = trim(comment);
  if (trimmed.rfind(marker, 0) != 0) return {};
  const std::string rest = trim(trimmed.substr(marker.size()));
  if (rest.rfind("treat-as", 0) == 0) {
    std::istringstream is(rest.substr(8));
    std::string path;
    is >> path;
    if (!path.empty() && treat_as != nullptr) *treat_as = path;
    return {};
  }
  if (rest.rfind("allow(", 0) != 0) return {};
  const std::size_t close = rest.find(')');
  if (close == std::string::npos) return {};
  Allow allow;
  const std::string inside = rest.substr(6, close - 6);
  std::size_t item = 0;
  while (item < inside.size()) {
    std::size_t comma = inside.find(',', item);
    if (comma == std::string::npos) comma = inside.size();
    const std::string rule = trim(inside.substr(item, comma - item));
    if (!rule.empty()) allow.rules.insert(rule);
    item = comma + 1;
  }
  std::string justification = trim(rest.substr(close + 1));
  if (!justification.empty() && justification.front() == ':') {
    justification = trim(justification.substr(1));
  }
  allow.has_justification = !justification.empty();
  return {std::move(allow)};
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

class FileLinter {
 public:
  FileLinter(std::string lint_path, const LexResult& lexed, std::vector<Diagnostic>* sink)
      : path_(std::move(lint_path)), toks_(lexed.tokens), comments_(lexed.comments), sink_(sink) {}

  void run() {
    check_annotation_grammar();
    if (path_ == "src/api/remspan_c.cpp" || path_ == "src/api/remspan_service_c.cpp") {
      check_r1();
    }
    if (path_ != "src/util/strnum.cpp") check_r2();
    if (path_ != "src/util/options.cpp") check_r3();
    if (starts_with(path_, "src/") || starts_with(path_, "include/")) check_r4();
    check_r5();
    for (const char* sub : {"src/core/", "src/graph/", "src/dynamic/", "src/baseline/",
                            "src/shard/", "src/sim/"}) {
      if (starts_with(path_, sub)) {
        check_r6();
        break;
      }
    }
    if (path_ != "src/util/timer.hpp" && !starts_with(path_, "src/obs/")) check_r7();
  }

 private:
  // --- shared helpers ---

  const Token* at(std::size_t i) const { return i < toks_.size() ? &toks_[i] : nullptr; }

  bool is_punct(std::size_t i, const char* p) const {
    const Token* t = at(i);
    return t != nullptr && t->kind == Tok::kPunct && t->text == p;
  }

  bool is_ident(std::size_t i, const char* name) const {
    const Token* t = at(i);
    return t != nullptr && t->kind == Tok::kIdent && t->text == name;
  }

  /// Index just past the brace/paren/bracket group opening at `open`.
  std::size_t skip_group(std::size_t open, const char* open_p, const char* close_p) const {
    int depth = 0;
    std::size_t i = open;
    for (; i < toks_.size(); ++i) {
      if (is_punct(i, open_p)) ++depth;
      if (is_punct(i, close_p) && --depth == 0) return i + 1;
    }
    return i;
  }

  /// A violation of `rule` at `line`, unless suppressed by an allow
  /// directive on the same line or anywhere in the contiguous comment block
  /// immediately above (multi-line justifications are the norm).
  void flag(const char* rule, int line, std::string message) {
    int l = line;
    do {
      const auto it = comments_.find(l);
      if (it == comments_.end()) {
        if (l == line) {  // no trailing comment; still look at the block above
          --l;
          continue;
        }
        break;
      }
      for (const Allow& a : parse_directives(it->second, nullptr)) {
        if (a.rules.count(rule) != 0 && a.has_justification) return;
      }
      --l;
    } while (l > 0);
    sink_->push_back({path_, line, rule, std::move(message)});
  }

  // --- R0: allow() directives need a justification ---

  void check_annotation_grammar() {
    for (const auto& [line, text] : comments_) {
      for (const Allow& a : parse_directives(text, nullptr)) {
        if (!a.has_justification) {
          sink_->push_back({path_, line, "R0",
                            "'remspan-lint: allow(...)' requires a written justification "
                            "after the closing parenthesis"});
        }
      }
    }
  }

  // --- R1: the C ABI exception wall ---

  void check_r1() {
    std::size_t i = 0;
    // Locate `extern "C" {`.
    for (; i + 2 < toks_.size(); ++i) {
      if (is_ident(i, "extern") && toks_[i + 1].kind == Tok::kString &&
          toks_[i + 1].text == "C" && is_punct(i + 2, "{")) {
        break;
      }
    }
    if (i + 2 >= toks_.size()) {
      sink_->push_back({path_, 1, "R1", "no extern \"C\" block found in the C ABI file"});
      return;
    }
    const std::size_t block_end = skip_group(i + 2, "{", "}") - 1;
    std::size_t j = i + 3;
    while (j < block_end) {
      if (is_punct(j, "{")) {  // non-function brace group (none expected)
        j = skip_group(j, "{", "}");
        continue;
      }
      // Function definition: Ident '(' ... ')' [tokens] '{'.
      if (toks_[j].kind == Tok::kIdent && is_punct(j + 1, "(")) {
        const std::string name = toks_[j].text;
        std::size_t k = skip_group(j + 1, "(", ")");
        while (k < block_end && !is_punct(k, "{") && !is_punct(k, ";") &&
               !(toks_[k].kind == Tok::kIdent && is_punct(k + 1, "("))) {
          ++k;
        }
        if (k < block_end && is_punct(k, "{")) {
          check_r1_body(name, k);
          j = skip_group(k, "{", "}");
          continue;
        }
        if (k < block_end && is_punct(k, ";")) {  // prototype
          j = k + 1;
          continue;
        }
        j = k;
        continue;
      }
      ++j;
    }
  }

  /// Body must be exactly: { try { ... } catch (..) {..} ... catch (...) {..} }
  /// with the final catch a catch-all, and nothing outside the try/catch.
  void check_r1_body(const std::string& name, std::size_t open) {
    const int line = toks_[open].line;
    const std::size_t body_end = skip_group(open, "{", "}") - 1;
    std::size_t i = open + 1;
    if (i >= body_end) return;  // empty body: nothing can throw
    if (!is_ident(i, "try") || !is_punct(i + 1, "{")) {
      flag("R1", toks_[i].line,
           "'" + name + "' must open with a top-level try block (statements before the "
           "try can throw across the C ABI — even fail()'s string allocation)");
      return;
    }
    i = skip_group(i + 1, "{", "}");
    bool saw_catch_all = false;
    while (i < body_end && is_ident(i, "catch")) {
      if (!is_punct(i + 1, "(")) break;
      const std::size_t close = skip_group(i + 1, "(", ")");
      // catch (...) lexes as three '.' punct tokens between the parens.
      if (is_punct(i + 2, ".") && is_punct(i + 3, ".") && is_punct(i + 4, ".") &&
          is_punct(i + 5, ")")) {
        saw_catch_all = true;
      }
      if (!is_punct(close, "{")) break;
      i = skip_group(close, "{", "}");
    }
    if (!saw_catch_all) {
      flag("R1", line,
           "'" + name + "' needs a top-level catch-all handler: its catch chain must end "
           "with catch (...)");
      return;
    }
    if (i < body_end) {
      flag("R1", toks_[i].line,
           "'" + name + "' has statements after the top-level try/catch; they can throw "
           "across the C ABI");
    }
  }

  // --- R2: strict number parsing only via util/strnum ---

  void check_r2() {
    static const std::set<std::string> banned = {
        "stoi",    "stol",    "stoll",   "stoul",   "stoull", "stof",    "stod",
        "stold",   "atoi",    "atol",    "atoll",   "atof",   "strtol",  "strtoll",
        "strtoul", "strtoull", "strtof", "strtod",  "strtold"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].kind == Tok::kIdent && banned.count(toks_[i].text) != 0 &&
          is_punct(i + 1, "(")) {
        flag("R2", toks_[i].line,
             "'" + toks_[i].text + "' accepts partial/garbage-suffixed input; use the "
             "strict parse_full_int/parse_full_double from util/strnum instead");
      }
    }
  }

  // --- R3: no std::exit outside cli_main ---

  void check_r3() {
    static const std::set<std::string> banned = {"exit", "_exit", "_Exit", "quick_exit"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].kind != Tok::kIdent || banned.count(toks_[i].text) == 0 ||
          !is_punct(i + 1, "(")) {
        continue;
      }
      // Member access spelled foo.exit(...) is something else entirely.
      if (i > 0 && (is_punct(i - 1, ".") || is_punct(i - 1, "->"))) continue;
      flag("R3", toks_[i].line,
           "'" + toks_[i].text + "' skips destructors and bypasses the cli_main error "
           "contract; throw OptionError or return a status code instead");
    }
  }

  // --- R4: REMSPAN_CHECK over assert in library code ---

  void check_r4() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (is_ident(i, "assert") && is_punct(i + 1, "(")) {
        if (i > 0 && (is_punct(i - 1, ".") || is_punct(i - 1, "->"))) continue;
        flag("R4", toks_[i].line,
             "assert() vanishes in release builds; library invariants use the always-on "
             "REMSPAN_CHECK");
      }
    }
  }

  // --- R5: determinism (no ambient randomness or time-based seeds) ---

  void check_r5() {
    static const std::set<std::string> banned_calls = {"rand", "srand",   "drand48",
                                                       "lrand48", "srand48", "random"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].kind != Tok::kIdent) continue;
      const std::string& t = toks_[i].text;
      if (t == "random_device") {
        flag("R5", toks_[i].line,
             "std::random_device is nondeterministic; all randomness must flow from an "
             "explicitly seeded Rng");
        continue;
      }
      if (banned_calls.count(t) != 0 && is_punct(i + 1, "(")) {
        if (i > 0 && (is_punct(i - 1, ".") || is_punct(i - 1, "->"))) continue;
        flag("R5", toks_[i].line,
             "'" + t + "' draws from ambient global state; use an explicitly seeded Rng");
        continue;
      }
      // Time-based seeding: time(nullptr) / time(NULL) / time(0).
      if (t == "time" && is_punct(i + 1, "(") &&
          (is_ident(i + 2, "nullptr") || is_ident(i + 2, "NULL") ||
           (at(i + 2) != nullptr && toks_[i + 2].kind == Tok::kNumber &&
            toks_[i + 2].text == "0")) &&
          is_punct(i + 3, ")")) {
        flag("R5", toks_[i].line,
             "time-based seeding makes runs irreproducible; seeds are explicit parameters");
      }
    }
  }

  // --- R6: unordered-container iteration needs a justification ---

  void check_r6() {
    const std::set<std::string> tracked = collect_unordered_vars();
    if (tracked.empty()) return;
    static const std::set<std::string> begin_names = {"begin", "cbegin", "rbegin", "crbegin"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      // Range-for whose range expression is exactly one tracked identifier.
      if (is_ident(i, "for") && is_punct(i + 1, "(")) {
        const std::size_t close = skip_group(i + 1, "(", ")") - 1;
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
          if (is_punct(j, "(")) ++depth;
          if (is_punct(j, ")")) --depth;
          if (depth == 1 && is_punct(j, ":")) {
            if (j + 2 == close && toks_[j + 1].kind == Tok::kIdent &&
                tracked.count(toks_[j + 1].text) != 0) {
              flag("R6", toks_[i].line,
                   "iterates unordered container '" + toks_[j + 1].text +
                       "' — hash-table order is implementation-defined; sort first, or "
                       "annotate 'remspan-lint: allow(R6) <why order cannot leak>'");
            }
            break;
          }
        }
        continue;
      }
      // Explicit iterator walk: tracked.begin() and friends.
      if (toks_[i].kind == Tok::kIdent && tracked.count(toks_[i].text) != 0 &&
          (is_punct(i + 1, ".") || is_punct(i + 1, "->")) && at(i + 2) != nullptr &&
          toks_[i + 2].kind == Tok::kIdent && begin_names.count(toks_[i + 2].text) != 0 &&
          is_punct(i + 3, "(")) {
        flag("R6", toks_[i].line,
             "iterates unordered container '" + toks_[i].text +
                 "' via ." + toks_[i + 2].text +
                 "() — hash-table order is implementation-defined; sort first, or annotate "
                 "'remspan-lint: allow(R6) <why order cannot leak>'");
      }
    }
  }

  // --- R7: wall-clock reads only behind Timer / the obs layer ---

  void check_r7() {
    static const std::set<std::string> clocks = {"steady_clock", "system_clock",
                                                 "high_resolution_clock"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].kind != Tok::kIdent || clocks.count(toks_[i].text) == 0) continue;
      if (is_punct(i + 1, "::") && is_ident(i + 2, "now") && is_punct(i + 3, "(")) {
        flag("R7", toks_[i].line,
             "raw '" + toks_[i].text +
                 "::now()' — wall-clock reads go through Timer or obs::PhaseSpan so "
                 "measured time stays separated from every deterministic stream; or "
                 "annotate 'remspan-lint: allow(R7) <why this read is safe>'");
      }
    }
  }

  /// Names declared with an unordered_{map,set,multimap,multiset} type in
  /// this file (locals, members and parameters alike).
  std::set<std::string> collect_unordered_vars() const {
    static const std::set<std::string> unordered = {"unordered_map", "unordered_set",
                                                    "unordered_multimap",
                                                    "unordered_multiset"};
    std::set<std::string> tracked;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].kind != Tok::kIdent || unordered.count(toks_[i].text) == 0) continue;
      std::size_t j = i + 1;
      if (is_punct(j, "<")) {  // skip the template argument list
        int depth = 0;
        for (; j < toks_.size(); ++j) {
          if (is_punct(j, "<")) ++depth;
          if (is_punct(j, ">") && --depth == 0) {
            ++j;
            break;
          }
        }
      }
      // Nested-name uses (::iterator etc.) are types, not declarations.
      if (is_punct(j, "::")) continue;
      while (j < toks_.size() &&
             (is_punct(j, "&") || is_punct(j, "*") || is_ident(j, "const"))) {
        ++j;
      }
      if (j < toks_.size() && toks_[j].kind == Tok::kIdent) tracked.insert(toks_[j].text);
    }
    return tracked;
  }

  const std::string path_;
  const std::vector<Token>& toks_;
  const CommentMap& comments_;
  std::vector<Diagnostic>* sink_;
};

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

const char* rule_name(const std::string& id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) return r.name;
  }
  return "?";
}

bool has_source_extension(const fs::path& p) {
  static const std::set<std::string> exts = {".c", ".cc", ".cpp", ".h", ".hh", ".hpp"};
  return exts.count(p.extension().string()) != 0;
}

/// The lint path decides which rules apply: root-relative with forward
/// slashes, overridable by a treat-as directive (fixture self-tests).
std::string lint_path_for(const fs::path& file, const fs::path& root,
                          const std::optional<std::string>& treat_as) {
  if (treat_as.has_value()) return *treat_as;
  std::error_code ec;
  const fs::path rel = fs::relative(file, root, ec);
  fs::path use = (!ec && !rel.empty() && rel.native()[0] != '.') ? rel : file.filename();
  return use.generic_string();
}

int lint_file(const fs::path& file, const fs::path& root, std::vector<Diagnostic>* sink) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::cerr << "remspan_lint: cannot read " << file.string() << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const LexResult lexed = lex(buffer.str());

  std::optional<std::string> treat_as;
  for (const auto& [line, text] : lexed.comments) {
    parse_directives(text, &treat_as);
  }
  FileLinter(lint_path_for(file, root, treat_as), lexed, sink).run();
  return 0;
}

int usage() {
  std::cerr << "usage: remspan_lint --root DIR [FILE...] | remspan_lint --list-rules\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<fs::path> files;
  bool explicit_files = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        std::cout << r.id << "  " << r.name << "\n    " << r.summary << "\n";
      }
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) return usage();
      root = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') return usage();
    files.emplace_back(arg);
    explicit_files = true;
  }

  if (!explicit_files) {
    if (!fs::is_directory(root)) {
      std::cerr << "remspan_lint: --root " << root.string() << " is not a directory\n";
      return 2;
    }
    for (const char* top : {"src", "include", "bench", "examples", "tools"}) {
      const fs::path dir = root / top;
      if (!fs::is_directory(dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (entry.is_regular_file() && has_source_extension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    }
    std::sort(files.begin(), files.end());
  }

  std::vector<Diagnostic> diagnostics;
  for (const fs::path& file : files) {
    const int rc = lint_file(file, root, &diagnostics);
    if (rc != 0) return rc;
  }

  for (const Diagnostic& d : diagnostics) {
    std::cout << d.path << ":" << d.line << ": [" << d.rule << " " << rule_name(d.rule)
              << "] " << d.message << "\n";
  }
  std::set<std::string> dirty_files;
  for (const Diagnostic& d : diagnostics) dirty_files.insert(d.path);
  std::cout << "remspan_lint: " << diagnostics.size() << " violation(s) in "
            << dirty_files.size() << " file(s), " << files.size() << " file(s) scanned\n";
  return diagnostics.empty() ? 0 : 1;
}
