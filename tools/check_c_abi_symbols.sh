#!/bin/sh
# Gate on the remspan_c export surface: every strong global symbol the
# shared library defines (nm -D types T/D/B/R) must be remspan_-prefixed.
# Weak/unique vague-linkage symbols (V/W/u — libstdc++ template RTTI and
# friends) are linkage artifacts of building C++ behind the C ABI and are
# allowed; they are not part of the ABI surface.
#
# Usage: check_c_abi_symbols.sh <path/to/libremspan_c.so>
# Exit 0 when the surface is clean, 1 on leaked symbols, 2 on usage errors.
set -u

lib="${1:-}"
if [ -z "$lib" ] || [ ! -f "$lib" ]; then
  echo "usage: $0 <path/to/libremspan_c.so>" >&2
  exit 2
fi
if ! command -v nm >/dev/null 2>&1; then
  echo "check_c_abi_symbols: nm not found" >&2
  exit 2
fi

leaked=$(nm -D --defined-only "$lib" | awk '$2 ~ /^[TDBR]$/ { print $3 }' |
  grep -v '^remspan_' || true)

exported=$(nm -D --defined-only "$lib" | awk '$2 ~ /^[TDBR]$/' | grep -c 'remspan_')
if [ "$exported" -eq 0 ]; then
  echo "check_c_abi_symbols: no remspan_ exports found in $lib (wrong file?)" >&2
  exit 1
fi

if [ -n "$leaked" ]; then
  echo "check_c_abi_symbols: non-remspan_ strong symbols exported from $lib:" >&2
  echo "$leaked" >&2
  exit 1
fi

echo "check_c_abi_symbols: OK ($exported remspan_ exports, no leaks)"
exit 0
