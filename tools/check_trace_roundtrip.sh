#!/bin/sh
# End-to-end gate for the observability surface of remspan_tool:
#
#   1. Bit-exactness: the same static build run twice — once bare, once with
#      --trace-out/--metrics-out — must emit byte-identical DOT output.
#      Observation must never perturb results (docs/OBSERVABILITY.md).
#   2. Artifact validity: the trace file must be well-formed Chrome
#      trace_event JSON with balanced spans, and the metrics file a
#      well-formed snapshot — both per tools/trace_check.cpp.
#   3. The simulator path: a --reconverge run under loss must produce a
#      valid trace too (round-numbered sim lanes, retransmission events).
#
# Usage: check_trace_roundtrip.sh <remspan_tool> <trace_check> <workdir>
# Exit 0 when every gate passes, 1 on a failed gate, 2 on usage errors.
set -u

tool="${1:-}"
checker="${2:-}"
workdir="${3:-}"
if [ -z "$tool" ] || [ ! -x "$tool" ] || [ -z "$checker" ] || [ ! -x "$checker" ] ||
   [ -z "$workdir" ]; then
  echo "usage: $0 <remspan_tool> <trace_check> <workdir>" >&2
  exit 2
fi
mkdir -p "$workdir" || exit 2

gen="--gen udg --n 200 --side 5.0 --seed 7"

run() {
  # Tool stdout is progress reporting, not part of the gate; keep it out of
  # the ctest log unless a step fails.
  if ! "$@" >"$workdir/last_run.log" 2>&1; then
    echo "check_trace_roundtrip: command failed: $*" >&2
    cat "$workdir/last_run.log" >&2
    return 1
  fi
}

# --- 1 + 2: static build, bare vs observed, byte-compared via DOT ---------
run "$tool" $gen --construction th2 --k 2 --dot "$workdir/plain.dot" || exit 1
run "$tool" $gen --construction th2 --k 2 --dot "$workdir/traced.dot" \
    --trace-out "$workdir/build_trace.json" \
    --metrics-out "$workdir/build_metrics.json" || exit 1
if ! cmp -s "$workdir/plain.dot" "$workdir/traced.dot"; then
  echo "check_trace_roundtrip: DOT output differs between bare and observed runs" >&2
  exit 1
fi
"$checker" "$workdir/build_trace.json" || exit 1
"$checker" --metrics "$workdir/build_metrics.json" || exit 1

# --- 3: reconvergence under loss, traced and validated --------------------
run "$tool" $gen --emit-churn-trace "$workdir/churn.txt" \
    --trace-batches 5 --trace-events 6 || exit 1
run "$tool" $gen --construction th2 --k 2 --reconverge \
    --churn-trace "$workdir/churn.txt" --loss 0.15 \
    --trace-out "$workdir/sim_trace.json" \
    --metrics-out "$workdir/sim_metrics.json" || exit 1
"$checker" "$workdir/sim_trace.json" || exit 1
"$checker" --metrics "$workdir/sim_metrics.json" || exit 1

echo "check_trace_roundtrip: OK (bit-exact observed run, all artifacts valid)"
exit 0
