// A faithful analogue of the paper's Figure 1: a small unit disk graph on
// which the three remote-spanner flavours behave exactly as illustrated:
//
//   (b) a (1,0)-remote-spanner that is sparser than G (impossible for a
//       classical (1,0)-spanner, which must keep every edge),
//   (c) a (2,-1)-remote-spanner where some pair (u,v) at distance 2 is
//       reached through a 3-hop detour u-y-x-v,
//   (d) a 2-connecting (2,-1)-remote-spanner whose H_u holds two disjoint
//       u-v paths u-y-x-v and u-y'-x'-v.
//
// The exact node coordinates differ from the paper's drawing (they are not
// published), but every property stated in the caption is checked here with
// the library's oracles. Run with --dot to get Graphviz output.
#include <iostream>

#include "analysis/kconn_oracle.hpp"
#include "analysis/stretch_oracle.hpp"
#include "api/registry.hpp"
#include "geom/ball_graph.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/graphio.hpp"
#include "sim/routing.hpp"
#include "util/options.hpp"

using namespace remspan;

int tool_main(int argc, char** argv) {
  Options opts(argc, argv);
  const bool dot = opts.get_flag("dot");
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  // Figure 1 analogue. u and v sit at graph distance 2 through the middle
  // node m; two parallel relay chains y-x and y'-x' provide the detours.
  PointSet points(2);
  const NodeId u = 0, v = 2, x = 4;
  [[maybe_unused]] const NodeId m = 1, y = 3, yp = 5, xp = 6;
  points.add2(0.00, 0.00);   // u
  points.add2(0.95, 0.00);   // m
  points.add2(1.90, 0.00);   // v
  points.add2(0.50, 0.62);   // y
  points.add2(1.40, 0.62);   // x
  points.add2(0.50, -0.62);  // y'
  points.add2(1.40, -0.62);  // x'
  const GeometricGraph gg = unit_ball_graph(std::move(points), MetricKind::L2, 1.0);
  const Graph& g = gg.graph;

  std::cout << "G^a: unit disk graph, n=" << g.num_nodes() << ", m=" << g.num_edges()
            << " edges:";
  for (const Edge& e : g.edges()) std::cout << " (" << e.u << "," << e.v << ")";
  std::cout << "\nnode names: 0=u 1=m 2=v 3=y 4=x 5=y' 6=x'\n\n";

  // (b) (1,0)-remote-spanner: sparser than G yet distance-exact.
  const EdgeSet hb = api::build_spanner(g, "th2?k=1").edges;
  const auto rb = check_remote_stretch(g, hb, Stretch{1, 0});
  std::cout << "(b) (1,0)-remote-spanner H^b: " << hb.size() << "/" << g.num_edges()
            << " edges, exact distances: " << (rb.satisfied ? "verified" : "VIOLATED")
            << "\n";
  const DistanceMatrix dhb = remote_distances(g, hb);
  std::cout << "    d_{H^b_u}(u,x) = " << dhb(u, x)
            << " = d_G(u,x) = " << bfs_distance(GraphView(g), u, x)
            << "  (edge uy only present inside H^b_u, as in the caption)\n\n";

  // (c) (2,-1)-remote-spanner: the eps = 1 case of Theorem 1.
  const EdgeSet hc = api::build_spanner(g, "th1?eps=1").edges;
  const auto rc = check_remote_stretch(g, hc, Stretch{2, -1});
  const DistanceMatrix dhc = remote_distances(g, hc);
  std::cout << "(c) (2,-1)-remote-spanner H^c: " << hc.size() << "/" << g.num_edges()
            << " edges, stretch (2,-1): " << (rc.satisfied ? "verified" : "VIOLATED")
            << "\n";
  std::cout << "    d_G(u,v) = " << bfs_distance(GraphView(g), u, v)
            << ", d_{H^c_u}(u,v) = " << dhc(u, v) << " (bound 2*2-1 = 3)\n\n";

  // (d) 2-connecting (2,-1)-remote-spanner: two disjoint u-v paths survive.
  const EdgeSet hd = api::build_spanner(g, "th3?k=2").edges;
  const auto rd = check_k_connecting_stretch(g, hd, 2, Stretch{2, -1});
  std::cout << "(d) 2-connecting (2,-1)-remote-spanner H^d: " << hd.size() << "/"
            << g.num_edges() << " edges, 2-connecting stretch: "
            << (rd.satisfied ? "verified" : "VIOLATED") << "\n";
  const auto paths = min_disjoint_paths(AugmentedView(hd, u), u, v, 2, /*want_paths=*/true);
  std::cout << "    H^d_u holds " << paths.connectivity() << " disjoint u-v paths, total "
            << paths.d(2) << " hops (bound 2*d^2_G - 2 = "
            << 2 * min_disjoint_paths(GraphView(g), u, v, 2).d(2) - 2 << "):\n";
  for (const auto& p : paths.paths) {
    std::cout << "      ";
    for (std::size_t i = 0; i < p.size(); ++i) std::cout << (i ? "-" : "") << p[i];
    std::cout << "\n";
  }

  if (dot) {
    std::cout << "\n--- DOT (G^a with H^d highlighted) ---\n"
              << to_dot(g, &hd, "figure1") << "\n";
  }
  return 0;
}

int main(int argc, char** argv) { return cli_main(tool_main, argc, argv); }
