// Multipath reliability scenario (Section 3's motivation): a 2-connecting
// remote-spanner keeps two node-disjoint routes alive, so a single relay
// failure never partitions a source from its destination.
//
//   ./multipath [--n 250] [--side 4.5] [--pairs 6] [--seed 5]
#include <iostream>

#include "api/registry.hpp"
#include "geom/ball_graph.hpp"
#include "graph/connectivity.hpp"
#include "graph/disjoint_paths.hpp"
#include "sim/routing.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace remspan;

namespace {

/// Copies h without the edges incident to `failed` (a crashed relay).
EdgeSet without_node(const EdgeSet& h, NodeId failed) {
  EdgeSet out(h.graph());
  for (const Edge& e : h.edge_list()) {
    if (e.u != failed && e.v != failed) out.insert(e.u, e.v);
  }
  return out;
}

}  // namespace

int tool_main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto n = static_cast<std::size_t>(opts.get_int("n", 250));
  const double side = opts.get_double("side", 4.5);
  const int pairs = static_cast<int>(opts.get_int("pairs", 6));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 5));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Rng rng(seed);
  const auto gg = uniform_unit_ball_graph(n, side, 2, rng);
  const Graph g = largest_component(gg.graph);
  const EdgeSet h2 = api::build_spanner(g, "th3?k=2").edges;
  const EdgeSet h1 = api::build_spanner(g, "th2?k=1").edges;
  std::cout << "network n=" << g.num_nodes() << " m=" << g.num_edges()
            << " | 2-connecting spanner: " << h2.size()
            << " edges | (1,0)-remote-spanner: " << h1.size() << " edges\n\n";

  Table table({"s", "t", "d^2_G", "d^2_{H_s}", "failed relay", "reroute via H^2",
               "reroute via H^1"});
  Rng pick(seed + 7);
  int produced = 0;
  while (produced < pairs) {
    const auto s = static_cast<NodeId>(pick.uniform(g.num_nodes()));
    const auto t = static_cast<NodeId>(pick.uniform(g.num_nodes()));
    if (s == t || g.has_edge(s, t)) continue;
    const auto in_g = min_disjoint_paths(GraphView(g), s, t, 2);
    if (in_g.connectivity() < 2) continue;
    const auto in_h = min_disjoint_paths(AugmentedView(h2, s), s, t, 2, /*want_paths=*/true);
    if (in_h.connectivity() < 2) continue;
    // Fail the first internal relay of the primary path; the surviving
    // spanner must still deliver.
    const NodeId failed = in_h.paths[0].size() > 2 ? in_h.paths[0][1] : in_h.paths[1][1];
    const EdgeSet h2_failed = without_node(h2, failed);
    const EdgeSet h1_failed = without_node(h1, failed);
    const auto route2 = greedy_route(h2_failed, s, t);
    const auto route1 = greedy_route(h1_failed, s, t);
    table.add_row({std::to_string(s), std::to_string(t),
                   std::to_string(in_g.d(2)), std::to_string(in_h.d(2)),
                   std::to_string(failed),
                   route2.delivered ? std::to_string(route2.hops()) + " hops" : "LOST",
                   route1.delivered ? std::to_string(route1.hops()) + " hops" : "LOST"});
    ++produced;
  }
  table.print(std::cout);
  std::cout << "\nThe 2-connecting spanner (Theorem 3) guarantees d^2_{H_s} <= 2 d^2_G - 2;\n"
               "the plain (1,0)-remote-spanner makes no such promise and may lose the\n"
               "pair when its only advertised shortest path dies.\n";
  return 0;
}

int main(int argc, char** argv) { return cli_main(tool_main, argc, argv); }
