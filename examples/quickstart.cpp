// Quickstart: build a random ad-hoc network, compute the three
// remote-spanner flavours of the paper, verify their guarantees with the
// exact oracles, and route a packet greedily.
//
//   ./quickstart [--n 400] [--side 6] [--seed 1]
#include <iostream>

#include "analysis/kconn_oracle.hpp"
#include "analysis/spanner_stats.hpp"
#include "analysis/stretch_oracle.hpp"
#include "api/registry.hpp"
#include "geom/ball_graph.hpp"
#include "graph/connectivity.hpp"
#include "sim/routing.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace remspan;

int tool_main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto n = static_cast<std::size_t>(opts.get_int("n", 400));
  const double side = opts.get_double("side", 6.0);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  // 1. A unit disk graph: the paper's ad-hoc network model.
  Rng rng(seed);
  const auto gg = uniform_unit_ball_graph(n, side, 2, rng);
  const Graph g = largest_component(gg.graph);
  std::cout << "network: n=" << g.num_nodes() << " edges=" << g.num_edges()
            << " avg_degree=" << format_double(g.average_degree(), 1) << "\n\n";

  // 2. The three constructions of Theorems 1-3.
  const EdgeSet exact = api::build_spanner(g, "th2?k=1").edges;          // (1,0)
  const EdgeSet low_stretch = api::build_spanner(g, "th1?eps=0.5").edges;  // (1.5, 0)
  const EdgeSet two_conn = api::build_spanner(g, "th3?k=2").edges;        // 2-conn (2,-1)

  Table table({"construction", "edges", "% of input", "guarantee", "verified"});
  auto add_row = [&](const char* name, const EdgeSet& h, const char* guarantee,
                     bool ok) {
    const auto stats = compute_spanner_stats(h);
    table.add_row({name, std::to_string(stats.spanner_edges),
                   format_double(100.0 * stats.edge_fraction, 1), guarantee,
                   ok ? "yes" : "NO"});
  };
  add_row("full topology (link state)", EdgeSet(g, true), "(1,0)", true);
  add_row("(1,0)-remote-spanner  [Th.2, k=1]", exact, "(1,0)",
          check_remote_stretch(g, exact, Stretch{1, 0}).satisfied);
  add_row("(1.5,0)-remote-spanner [Th.1, eps=.5]", low_stretch, "(1.5,0)",
          check_remote_stretch(g, low_stretch, Stretch{1.5, 0.0}).satisfied);
  add_row("2-connecting (2,-1)    [Th.3]", two_conn, "2-conn (2,-1)",
          check_k_connecting_stretch(g, two_conn, 2, Stretch{2, -1}, 100).satisfied);
  table.print(std::cout);

  // 3. Greedy link-state routing over the sparsest spanner.
  const NodeId s = 0;
  const NodeId t = g.num_nodes() - 1;
  const auto route = greedy_route(exact, s, t);
  std::cout << "\ngreedy route " << s << " -> " << t << " over the (1,0)-remote-spanner: ";
  if (route.delivered) {
    std::cout << route.hops() << " hops (shortest possible: "
              << bfs_distance(GraphView(g), s, t) << ")\n";
  } else {
    std::cout << "undeliverable\n";
  }
  return 0;
}

int main(int argc, char** argv) { return cli_main(tool_main, argc, argv); }
