// remspan_tool: command-line driver over the whole library. Generate or
// load a graph, build any spanner by name, verify it, and export results.
//
//   ./example_remspan_tool --input graph.txt --construction th1 --eps 0.5
//   ./example_remspan_tool --gen udg --n 500 --side 6 --construction th2 --k 2
//   ./example_remspan_tool --gen gnp --n 300 --deg 12 --construction mpr --dot out.dot
//
// Constructions: th1 (low-stretch, --eps), th2 (k-connecting exact, --k),
// th3 (k-connecting (2,-1), --k), mpr (OLSR), greedy (--t), baswana (--k),
// full. Verification runs the matching oracle unless --no-verify.
//
// Dynamic mode: --churn-trace <file> replays a recorded edge-event list
// (see src/dynamic/churn_trace.hpp for the format) through the incremental
// maintenance engine and prints per-batch update stats; the final spanner
// is checked bit-exact against a from-scratch rebuild (and the matching
// oracle unless --no-verify). --emit-churn-trace <file> writes a random
// link-churn trace for the loaded/generated graph to replay later.
//
// Protocol mode: --churn-trace <file> --reconverge replays the same trace
// at the protocol level (src/sim/reconvergence.hpp): per batch it reports
// the rounds, messages and bytes the scoped incremental re-advertisement
// needs to re-converge, next to the full-re-flood strawman, and checks both
// end on the centralized construction bit-exact.
#include <fstream>
#include <iostream>

#include "analysis/kconn_oracle.hpp"
#include "analysis/spanner_stats.hpp"
#include "analysis/stretch_oracle.hpp"
#include "baseline/baswana_sen.hpp"
#include "baseline/greedy_spanner.hpp"
#include "baseline/mpr.hpp"
#include "core/remote_spanner.hpp"
#include "dynamic/churn_trace.hpp"
#include "dynamic/incremental_spanner.hpp"
#include "core/params.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "graph/graphio.hpp"
#include "sim/reconvergence.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace remspan;

namespace {

Graph load_or_generate(Options& opts, Rng& rng) {
  const std::string input = opts.get_string("input", "");
  if (!input.empty()) {
    std::ifstream in(input);
    if (!in) {
      std::cerr << "cannot open " << input << "\n";
      std::exit(2);
    }
    return read_edge_list(in);
  }
  const std::string gen = opts.get_string("gen", "udg");
  const auto n = static_cast<NodeId>(opts.get_int("n", 400));
  if (gen == "udg") {
    const double side = opts.get_double("side", 6.0);
    const auto gg = uniform_unit_ball_graph(n, side, 2, rng);
    return largest_component(gg.graph);
  }
  if (gen == "gnp") {
    const double deg = opts.get_double("deg", 10.0);
    return connected_gnp(n, deg / n, rng);
  }
  if (gen == "ba") return barabasi_albert(n, static_cast<NodeId>(opts.get_int("m", 3)), rng);
  if (gen == "ws") {
    return watts_strogatz(n, static_cast<NodeId>(opts.get_int("ring", 6)),
                          opts.get_double("rewire", 0.1), rng);
  }
  if (gen == "grid") return grid_graph(n / 16 + 1, 16);
  std::cerr << "unknown --gen " << gen << " (udg|gnp|ba|ws|grid)\n";
  std::exit(2);
}

/// --churn-trace replay: feed every batch through the incremental engine,
/// print per-batch stats, and check the final spanner bit-exact against a
/// from-scratch rebuild.
/// Loads a trace file, mapping I/O and parse failures to exit code 2
/// (reported via the bool). read_churn_trace throws CheckError on
/// malformed input.
bool load_trace(const std::string& path, ChurnTrace& trace) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  try {
    trace = read_churn_trace(in);
  } catch (const CheckError& e) {
    std::cerr << "malformed churn trace " << path << ": " << e.what() << "\n";
    return false;
  }
  return true;
}

int run_churn_replay(const std::string& path, const std::string& construction, double eps,
                     Dist k, bool verify, std::uint64_t seed) {
  ChurnTrace trace;
  if (!load_trace(path, trace)) return 2;

  IncrementalConfig cfg;
  Stretch stretch{1.0, 0.0};
  if (construction == "th1") {
    cfg = IncrementalConfig::low_stretch(eps);
    stretch = Stretch{1.0 + eps, 1.0 - 2.0 * eps};
  } else if (construction == "th2") {
    cfg = IncrementalConfig::k_connecting(k);
  } else if (construction == "th3") {
    cfg = IncrementalConfig::two_connecting(k == 1 ? 2 : k);
    stretch = Stretch{2.0, -1.0};
  } else {
    std::cerr << "--churn-trace supports --construction th1|th2|th3 (got " << construction
              << ")\n";
    return 2;
  }

  DynamicGraph dg(trace.initial_graph());
  Timer timer;
  IncrementalSpanner inc(dg, cfg);
  const double init_s = timer.seconds();
  std::cout << "churn replay: " << path << "\n"
            << "initial graph: n=" << inc.graph().num_nodes() << " m="
            << inc.graph().num_edges() << ", " << cfg.name() << " spanner built in "
            << format_double(init_s, 3) << " s (dirty radius " << cfg.dirty_radius() << ")\n\n";

  Table table({"batch", "events", "+edges", "-edges", "dirty roots", "rebuilt", "|H|", "ms"});
  double total_s = 0.0;
  std::size_t batch_no = 0;
  for (const auto& batch : trace.batches) {
    const ChurnBatchStats stats = inc.apply_batch(batch);
    total_s += stats.seconds;
    table.add_row({std::to_string(++batch_no), std::to_string(stats.applied_events),
                   std::to_string(stats.inserted_edges), std::to_string(stats.removed_edges),
                   std::to_string(stats.dirty_roots), std::to_string(stats.rebuilt_tree_edges),
                   std::to_string(stats.spanner_edges), format_double(1e3 * stats.seconds, 3)});
  }
  table.print(std::cout);
  std::cout << "\nreplayed " << trace.batches.size() << " batches in "
            << format_double(total_s, 3) << " s (amortized "
            << format_double(1e3 * total_s / std::max<std::size_t>(1, trace.batches.size()), 3)
            << " ms/batch)\n";

  timer.reset();
  const EdgeSet scratch = cfg.build_full(inc.graph());
  const bool exact = scratch == inc.spanner();
  std::cout << "final spanner: " << inc.spanner().size() << " edges; from-scratch rebuild "
            << format_double(timer.seconds(), 3) << " s; bit-exact: " << (exact ? "yes" : "NO")
            << "\n";
  if (!exact) return 1;
  if (verify) {
    timer.reset();
    bool ok = false;
    if (construction == "th1") {
      ok = check_remote_stretch(inc.graph(), inc.spanner(), stretch).satisfied;
    } else {
      const Dist check_k = construction == "th3" ? 2 : std::max<Dist>(k, 1);
      ok = check_k_connecting_stretch(inc.graph(), inc.spanner(), check_k, stretch, 300, seed)
               .satisfied;
    }
    std::cout << "oracle on final snapshot: " << (ok ? "satisfied" : "VIOLATED") << " ("
              << format_double(timer.seconds(), 3) << " s)\n";
    if (!ok) return 1;
  }
  return 0;
}

/// --churn-trace --reconverge: replay the trace at the protocol level and
/// report the per-batch reconvergence cost of scoped incremental
/// re-advertisement against the full-re-flood strawman.
int run_reconverge(const std::string& path, const std::string& construction, double eps, Dist k,
                   bool verify) {
  ChurnTrace trace;
  if (!load_trace(path, trace)) return 2;

  RemSpanConfig cfg;
  if (construction == "th1") {
    cfg.kind = RemSpanConfig::Kind::kLowStretchMis;
    cfg.r = domination_radius_for_eps(eps);
  } else if (construction == "th2") {
    cfg.kind = RemSpanConfig::Kind::kKConnGreedy;
    cfg.k = k;
  } else if (construction == "th3") {
    cfg.kind = RemSpanConfig::Kind::kKConnMis;
    cfg.k = k == 1 ? 2 : k;
  } else if (construction == "mpr") {
    cfg.kind = RemSpanConfig::Kind::kOlsrMpr;
  } else {
    std::cerr << "--reconverge supports --construction th1|th2|th3|mpr (got " << construction
              << ")\n";
    return 2;
  }

  const Graph initial = trace.initial_graph();
  ReconvergenceSim inc(initial, cfg, ReconvergeStrategy::kIncremental);
  ReconvergenceSim ref(initial, cfg, ReconvergeStrategy::kFullReflood);
  const auto& init = inc.initial_stats();
  std::cout << "protocol reconvergence replay: " << path << "\n"
            << "initial graph: n=" << initial.num_nodes() << " m=" << initial.num_edges()
            << ", protocol " << cfg.kind_name() << " (scope " << cfg.flood_scope()
            << "), cold start: " << init.rounds << " rounds, " << init.transmissions
            << " msgs, " << init.wire_bytes << " B\n\n";

  Table table({"batch", "events", "+edges", "-edges", "advertisers", "rounds", "msgs",
               "bytes", "reflood msgs", "saved"});
  std::size_t batch_no = 0;
  std::uint64_t inc_msgs = 0;
  std::uint64_t ref_msgs = 0;
  for (const auto& batch : trace.batches) {
    const ReconvergeBatchStats a = inc.apply_batch(batch);
    const ReconvergeBatchStats b = ref.apply_batch(batch);
    inc_msgs += a.transmissions;
    ref_msgs += b.transmissions;
    const double saved =
        b.transmissions == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(a.transmissions) /
                                 static_cast<double>(b.transmissions));
    table.add_row({std::to_string(++batch_no), std::to_string(a.applied_events),
                   std::to_string(a.inserted_edges), std::to_string(a.removed_edges),
                   std::to_string(a.advertising_nodes), std::to_string(a.rounds),
                   std::to_string(a.transmissions), std::to_string(a.wire_bytes),
                   std::to_string(b.transmissions), format_double(saved, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nreplayed " << trace.batches.size() << " batches: " << inc_msgs
            << " incremental msgs vs " << ref_msgs << " re-flood msgs\n";

  const bool same = inc.spanner().edge_list() == ref.spanner().edge_list();
  std::cout << "incremental converged state == full re-flood: " << (same ? "yes" : "NO") << "\n";
  if (!same) return 1;
  if (verify) {
    EdgeSet central = [&] {
      switch (cfg.kind) {
        case RemSpanConfig::Kind::kLowStretchMis:
          return build_remote_spanner(inc.graph(), cfg.r, 1, TreeAlgorithm::kMis);
        case RemSpanConfig::Kind::kKConnMis:
          return build_2connecting_spanner(inc.graph(), cfg.k);
        case RemSpanConfig::Kind::kOlsrMpr:
          return olsr_mpr_spanner(inc.graph());
        default:
          return build_k_connecting_spanner(inc.graph(), cfg.k);
      }
    }();
    const bool exact = inc.spanner() == central;
    std::cout << "final spanner == centralized construction: " << (exact ? "yes" : "NO") << "\n";
    if (!exact) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const std::string construction = opts.get_string("construction", "th2");
  const double eps = opts.get_double("eps", 0.5);
  const Dist k = static_cast<Dist>(opts.get_int("k", 1));
  const double t = opts.get_double("t", 3.0);
  const bool verify = !opts.get_flag("no-verify");
  const std::string dot_path = opts.get_string("dot", "");
  const std::string out_path = opts.get_string("save-graph", "");
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const std::string churn_path = opts.get_string("churn-trace", "");
  const bool reconverge = opts.get_flag("reconverge");
  const std::string emit_trace_path = opts.get_string("emit-churn-trace", "");
  const auto trace_batches = static_cast<std::size_t>(opts.get_int("trace-batches", 20));
  const auto trace_events = static_cast<std::size_t>(opts.get_int("trace-events", 10));
  const double trace_node_frac = opts.get_double("trace-node-frac", 0.0);
  Rng rng(seed);
  Graph g = load_or_generate(opts, rng);
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  for (const auto& unknown : opts.unknown_options()) {
    std::cerr << "warning: unused option --" << unknown << "\n";
  }

  if (!emit_trace_path.empty()) {
    const ChurnTrace trace =
        random_edge_churn_trace(g, trace_batches, trace_events, trace_node_frac, seed);
    std::ofstream out(emit_trace_path);
    if (!out) {
      std::cerr << "cannot write " << emit_trace_path << "\n";
      return 2;
    }
    write_churn_trace(out, trace);
    std::cout << "churn trace (" << trace.batches.size() << " batches x " << trace_events
              << " events) written to " << emit_trace_path << "\n";
    return 0;
  }
  if (!churn_path.empty()) {
    if (reconverge) return run_reconverge(churn_path, construction, eps, k, verify);
    return run_churn_replay(churn_path, construction, eps, k, verify, seed);
  }
  if (reconverge) {
    std::cerr << "--reconverge needs --churn-trace <file>\n";
    return 2;
  }

  std::cout << "graph: n=" << g.num_nodes() << " m=" << g.num_edges() << " maxdeg="
            << g.max_degree() << "\n";
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    write_edge_list(out, g);
    std::cout << "graph saved to " << out_path << "\n";
  }

  Timer timer;
  EdgeSet h(g);
  std::string guarantee;
  enum class Check { kRemote, kKConn, kClassic, kNone } check = Check::kNone;
  Stretch stretch{1.0, 0.0};
  if (construction == "th1") {
    h = build_low_stretch_remote_spanner(g, eps);
    stretch = Stretch{1.0 + eps, 1.0 - 2.0 * eps};
    guarantee = "remote (" + format_double(stretch.alpha, 2) + "," +
                format_double(stretch.beta, 2) + ")";
    check = Check::kRemote;
  } else if (construction == "th2") {
    h = build_k_connecting_spanner(g, k);
    stretch = Stretch{1.0, 0.0};
    guarantee = std::to_string(k) + "-connecting remote (1,0)";
    check = Check::kKConn;
  } else if (construction == "th3") {
    h = build_2connecting_spanner(g, k == 1 ? 2 : k);
    stretch = Stretch{2.0, -1.0};
    guarantee = "2-connecting remote (2,-1)";
    check = Check::kKConn;
  } else if (construction == "mpr") {
    h = olsr_mpr_spanner(g);
    stretch = Stretch{1.0, 0.0};
    guarantee = "remote (1,0) via OLSR MPR";
    check = Check::kRemote;
  } else if (construction == "greedy") {
    h = greedy_spanner(g, t);
    stretch = Stretch{t, 0.0};
    guarantee = "classical (" + format_double(t, 1) + ",0)";
    check = Check::kClassic;
  } else if (construction == "baswana") {
    h = baswana_sen_spanner(g, k == 1 ? 2 : k, rng);
    const double a = 2.0 * (k == 1 ? 2 : k) - 1.0;
    stretch = Stretch{a, 0.0};
    guarantee = "classical (" + format_double(a, 0) + ",0)";
    check = Check::kClassic;
  } else if (construction == "full") {
    h = EdgeSet(g, true);
    guarantee = "all edges";
  } else {
    std::cerr << "unknown --construction " << construction
              << " (th1|th2|th3|mpr|greedy|baswana|full)\n";
    return 2;
  }
  const double build_s = timer.seconds();

  const auto stats = compute_spanner_stats(h);
  Table table({"metric", "value"});
  table.add_row({"construction", construction});
  table.add_row({"guarantee", guarantee});
  table.add_row({"edges", format_edges_with_fraction(stats)});
  table.add_row({"edges/n", format_double(stats.edges_per_node, 2)});
  table.add_row({"max degree in H", std::to_string(stats.max_degree)});
  table.add_row({"build time (s)", format_double(build_s, 3)});

  if (verify && check != Check::kNone) {
    timer.reset();
    bool ok = false;
    double max_ratio = 0;
    if (check == Check::kRemote) {
      const auto r = check_remote_stretch(g, h, stretch);
      ok = r.satisfied;
      max_ratio = r.max_ratio;
    } else if (check == Check::kKConn) {
      const auto r = check_k_connecting_stretch(
          g, h, check == Check::kKConn && construction == "th3" ? 2 : std::max<Dist>(k, 1),
          stretch, 300, seed);
      ok = r.satisfied;
      max_ratio = r.max_ratio;
    } else {
      const auto r = check_spanner_stretch(g, h, stretch);
      ok = r.satisfied;
      max_ratio = r.max_ratio;
    }
    table.add_row({"verified", ok ? "yes" : "NO"});
    table.add_row({"measured max ratio", format_double(max_ratio, 3)});
    table.add_row({"verify time (s)", format_double(timer.seconds(), 3)});
  }
  table.print(std::cout);

  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    out << to_dot(g, &h, "H");
    std::cout << "DOT written to " << dot_path << "\n";
  }
  return 0;
}
