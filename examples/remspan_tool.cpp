// remspan_tool: command-line driver over the whole library, built entirely
// on the remspan::api facade (src/api): the graph source and the
// construction are both specs resolved through the construction registry —
// the tool itself knows no construction by name.
//
//   ./example_remspan_tool --input graph.txt --construction th1 --eps 0.5
//   ./example_remspan_tool --gen udg --n 500 --side 6 --construction th2 --k 2
//   ./example_remspan_tool --gen gnp --n 300 --deg 12 --construction mpr --dot out.dot
//
// --construction accepts a registered name (th1, th2, th3, mpr, greedy,
// baswana, full) or a full spec string like "th2?k=2" (docs/API.md has the
// grammar); the dedicated flags --eps/--k/--t override the spec's
// parameters when passed. Verification runs the construction's registered
// oracle unless --no-verify. Unknown flags exit 2 with the flag named.
//
// Dynamic mode: --churn-trace <file> replays a recorded edge-event list
// (see src/dynamic/churn_trace.hpp for the format) through an incremental
// maintenance session and prints per-batch update stats; the final spanner
// is checked bit-exact against a from-scratch rebuild (and the matching
// oracle unless --no-verify). --emit-churn-trace <file> writes a random
// link-churn trace for the loaded/generated graph to replay later.
//
// Protocol mode: --churn-trace <file> --reconverge replays the same trace
// at the protocol level (src/sim/reconvergence.hpp): per batch it reports
// the rounds, messages and bytes the scoped incremental re-advertisement
// needs to re-converge, next to the full-re-flood strawman, and checks both
// end on the centralized construction bit-exact. --loss <p> runs the replay
// over a lossy channel (per-copy iid drop probability p; --burst <len>
// shapes it into Gilbert–Elliott bursts of mean length len), --delay <d>
// and --jitter <j> postpone every surviving copy by d + uniform{0..j}
// rounds, --fault-seed pins the channel's randomness. Faults switch the
// protocol to its reliable (retransmit + quiescence-detect) variant; the
// bit-exactness checks still hold — that is the convergence-under-loss
// contract of reconvergence.hpp.
//
// Service mode: --churn-trace <file> --serve-replay replays the trace
// through the multi-tenant SpannerService (src/serve): --tenants T tenants
// all open on the trace's initial graph, every trace batch is submitted to
// every tenant through admission control (a kRetryAfter verdict flushes
// the tenant and resubmits once), --workers W background drain threads
// (0 = deterministic synchronous mode). The final drain prints per-tenant
// epoch/coalescing/rejection accounting, and each tenant's last published
// snapshot is checked bit-exact against a from-scratch build on its final
// topology (and the matching oracle unless --no-verify).
//
// Observability: --trace-out <file> records the run as Chrome trace_event
// JSON (load in Perfetto / chrome://tracing), --metrics-out <file> dumps
// the metrics-registry snapshot; the REMSPAN_TRACE / REMSPAN_METRICS
// environment variables do the same without flags. Enabling either never
// changes any computed result (docs/OBSERVABILITY.md).
#include <fstream>
#include <iostream>

#include "analysis/spanner_stats.hpp"
#include "api/observability.hpp"
#include "api/registry.hpp"
#include "api/spec.hpp"
#include "dynamic/churn_trace.hpp"
#include "graph/graphio.hpp"
#include "obs/obs.hpp"
#include "serve/service.hpp"
#include "sim/reconvergence.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace remspan;

namespace {

/// Maps the CLI graph flags onto a GraphSpec (--input wins over --gen).
/// Every generator flag is consumed unconditionally so that passing one
/// alongside --input (or another family) is never flagged as unknown.
api::GraphSpec graph_spec_from_flags(Options& opts) {
  const std::string input = opts.get_string("input", "");
  const std::string gen = opts.get_string("gen", "udg");
  const auto n = static_cast<NodeId>(opts.get_int("n", 400));
  const double side = opts.get_double("side", 6.0);
  const double deg = opts.get_double("deg", 10.0);
  const auto m = static_cast<NodeId>(opts.get_int("m", 3));
  const auto ring = static_cast<NodeId>(opts.get_int("ring", 6));
  const double rewire = opts.get_double("rewire", 0.1);
  if (!input.empty()) return api::GraphSpec::file(input);
  if (gen == "udg") return api::GraphSpec::udg(n, side);
  if (gen == "gnp") return api::GraphSpec::gnp(n, deg);
  if (gen == "ba") return api::GraphSpec::ba(n, m);
  if (gen == "ws") return api::GraphSpec::ws(n, ring, rewire);
  if (gen == "grid") return api::GraphSpec::grid(n);
  throw BadOptionError("option --gen expects udg|gnp|ba|ws|grid, got '" + gen + "'");
}

/// Resolves --construction (a registered name or a full spec string) and
/// folds the dedicated CLI flags into the spec's parameters. The historical
/// flag semantics are preserved: --k 1 means "the construction's natural
/// minimum" for th3 and baswana (both need k >= 2).
api::SpannerSpec spanner_spec_from_flags(const std::string& construction, Options& opts,
                                         std::uint64_t seed, bool& spec_seed_explicit) {
  api::SpannerSpec spec = api::parse_spanner_spec(construction);
  const double eps = opts.get_double("eps", 0.5);
  const auto k = static_cast<Dist>(opts.get_int("k", 1));
  const double t = opts.get_double("t", 3.0);
  using Kind = api::SpannerSpec::Kind;
  if (opts.has("eps") && spec.kind == Kind::kTh1) spec.eps = eps;
  if (opts.has("k") &&
      (spec.kind == Kind::kTh2 || spec.kind == Kind::kTh3 || spec.kind == Kind::kBaswana)) {
    const bool needs_two = spec.kind == Kind::kTh3 || spec.kind == Kind::kBaswana;
    spec.k = needs_two && k == 1 ? 2 : k;
  }
  if (opts.has("t") && spec.kind == Kind::kGreedy) spec.t = t;
  // An explicit seed inside the spec string ("baswana?k=2&seed=5") wins;
  // otherwise the CLI --seed RNG is threaded through the build (see
  // tool_main, which keys off spec_seed_explicit), and the spec mirrors it
  // for display coherence.
  spec_seed_explicit =
      spec.kind == Kind::kBaswana && construction.find("seed=") != std::string::npos;
  if (spec.kind == Kind::kBaswana && !spec_seed_explicit) spec.seed = seed;
  return spec;
}

/// Maps the channel-fault CLI flags onto a FaultConfig (all default off):
/// --loss <p> iid per-copy drop probability, --burst <len> switches the
/// loss to a Gilbert–Elliott chain with mean burst length <len>,
/// --delay <d> fixed extra delivery rounds, --jitter <j> + uniform{0..j}
/// more, --fault-seed <s> the channel's own seed. Out-of-range values are
/// flag errors (exit 2), matching LinkModel's constructor contract.
FaultConfig fault_config_from_flags(Options& opts, std::uint64_t seed) {
  FaultConfig faults;
  const double loss = opts.get_double("loss", 0.0);
  const double burst = opts.get_double("burst", 0.0);
  faults.link.delay = static_cast<std::uint32_t>(opts.get_int("delay", 0));
  faults.link.jitter = static_cast<std::uint32_t>(opts.get_int("jitter", 0));
  faults.link.seed = static_cast<std::uint64_t>(opts.get_int("fault-seed", static_cast<long long>(seed)));
  if (loss < 0.0 || loss >= 1.0) {
    throw BadOptionError("option --loss expects a probability in [0, 1), got " +
                         std::to_string(loss));
  }
  if (burst < 0.0 || (burst > 0.0 && burst < 1.0)) {
    throw BadOptionError("option --burst expects a mean burst length >= 1, got " +
                         std::to_string(burst));
  }
  if (burst > 0.0 && loss <= 0.0) {
    throw BadOptionError("option --burst needs --loss > 0 (it shapes the loss into bursts)");
  }
  if (burst > 0.0) {
    faults.link.burst = GilbertElliott::from_loss_and_burst(loss, burst);
  } else {
    faults.link.drop = loss;
  }
  return faults;
}

/// RAII for --trace-out / --metrics-out: enables the requested sinks (on
/// top of whatever REMSPAN_TRACE / REMSPAN_METRICS already switched on) at
/// construction and writes the files on scope exit, covering every return
/// path of tool_main.
class ObsOutputs {
 public:
  ObsOutputs(std::string trace_path, std::string metrics_path)
      : trace_path_(std::move(trace_path)), metrics_path_(std::move(metrics_path)) {
    api::observability_from_env();
    if (!trace_path_.empty() || !metrics_path_.empty()) {
      api::enable_observability(!metrics_path_.empty() || obs::metrics() != nullptr,
                                !trace_path_.empty() || obs::trace() != nullptr);
    }
  }
  ~ObsOutputs() {
    std::string err;
    if (!trace_path_.empty()) {
      if (api::write_trace_file(trace_path_, &err)) {
        std::cout << "trace written to " << trace_path_ << "\n";
      } else {
        std::cerr << "trace write failed: " << err << "\n";
      }
    }
    if (!metrics_path_.empty()) {
      if (api::write_metrics_file(metrics_path_, &err)) {
        std::cout << "metrics written to " << metrics_path_ << "\n";
      } else {
        std::cerr << "metrics write failed: " << err << "\n";
      }
    }
  }
  ObsOutputs(const ObsOutputs&) = delete;
  ObsOutputs& operator=(const ObsOutputs&) = delete;

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

/// Loads a trace file, mapping I/O and parse failures to exit code 2
/// (reported via the bool). read_churn_trace throws CheckError on
/// malformed input.
bool load_trace(const std::string& path, ChurnTrace& trace) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  try {
    trace = read_churn_trace(in);
  } catch (const CheckError& e) {
    std::cerr << "malformed churn trace " << path << ": " << e.what() << "\n";
    return false;
  }
  return true;
}

/// --churn-trace replay: feed every batch through an incremental session,
/// print per-batch stats, and check the final spanner bit-exact against a
/// from-scratch rebuild.
int run_churn_replay(const std::string& path, const api::SpannerSpec& spec,
                     const std::string& construction, bool verify, std::uint64_t seed) {
  ChurnTrace trace;
  if (!load_trace(path, trace)) return 2;

  if (!api::supports_incremental(spec)) {
    std::cerr << "--churn-trace supports --construction th1|th2|th3 (got " << construction
              << ")\n";
    return 2;
  }

  obs::PhaseSpan timer("tool.churn_replay", "tool");
  const auto session = api::open_incremental_session(trace.initial_graph(), spec);
  IncrementalSpanner& inc = session->engine();
  const IncrementalConfig& cfg = inc.config();
  const double init_s = timer.seconds();
  std::cout << "churn replay: " << path << "\n"
            << "initial graph: n=" << inc.graph().num_nodes() << " m="
            << inc.graph().num_edges() << ", " << cfg.name() << " spanner built in "
            << format_double(init_s, 3) << " s (dirty radius " << cfg.dirty_radius() << ")\n\n";

  Table table({"batch", "events", "+edges", "-edges", "dirty roots", "rebuilt", "|H|", "ms"});
  double total_s = 0.0;
  std::size_t batch_no = 0;
  for (const auto& batch : trace.batches) {
    const ChurnBatchStats stats = inc.apply_batch(batch);
    total_s += stats.seconds;
    table.add_row({std::to_string(++batch_no), std::to_string(stats.applied_events),
                   std::to_string(stats.inserted_edges), std::to_string(stats.removed_edges),
                   std::to_string(stats.dirty_roots), std::to_string(stats.rebuilt_tree_edges),
                   std::to_string(stats.spanner_edges), format_double(1e3 * stats.seconds, 3)});
  }
  table.print(std::cout);
  std::cout << "\nreplayed " << trace.batches.size() << " batches in "
            << format_double(total_s, 3) << " s (amortized "
            << format_double(1e3 * total_s / std::max<std::size_t>(1, trace.batches.size()), 3)
            << " ms/batch)\n";

  timer.reset();
  const EdgeSet scratch = cfg.build_full(inc.graph());
  const bool exact = scratch == inc.spanner();
  std::cout << "final spanner: " << inc.spanner().size() << " edges; from-scratch rebuild "
            << format_double(timer.seconds(), 3) << " s; bit-exact: " << (exact ? "yes" : "NO")
            << "\n";
  if (!exact) return 1;
  if (verify) {
    timer.reset();
    const api::VerifyFn oracle = api::make_verifier(spec);
    api::VerifyOptions vopts;
    vopts.seed = seed;
    const bool ok = oracle(inc.graph(), inc.spanner(), vopts).satisfied;
    std::cout << "oracle on final snapshot: " << (ok ? "satisfied" : "VIOLATED") << " ("
              << format_double(timer.seconds(), 3) << " s)\n";
    if (!ok) return 1;
  }
  return 0;
}

/// --churn-trace --reconverge: replay the trace at the protocol level and
/// report the per-batch reconvergence cost of scoped incremental
/// re-advertisement against the full-re-flood strawman.
int run_reconverge(const std::string& path, const api::SpannerSpec& spec,
                   const std::string& construction, bool verify, const FaultConfig& faults) {
  ChurnTrace trace;
  if (!load_trace(path, trace)) return 2;

  if (!api::supports_protocol(spec)) {
    std::cerr << "--reconverge supports --construction th1|th2|th3|mpr (got " << construction
              << ")\n";
    return 2;
  }
  const RemSpanConfig cfg = api::protocol_config(spec);

  const Graph initial = trace.initial_graph();
  const auto inc =
      api::open_reconvergence_session(initial, spec, ReconvergeStrategy::kIncremental, faults);
  const auto ref =
      api::open_reconvergence_session(initial, spec, ReconvergeStrategy::kFullReflood, faults);
  const auto& init = inc->initial_stats();
  std::cout << "protocol reconvergence replay: " << path << "\n"
            << "initial graph: n=" << initial.num_nodes() << " m=" << initial.num_edges()
            << ", protocol " << cfg.kind_name() << " (scope " << cfg.flood_scope()
            << "), cold start: " << init.rounds << " rounds, " << init.transmissions
            << " msgs, " << init.wire_bytes << " B\n";
  if (faults.faulty()) {
    std::cout << "channel: ";
    if (faults.link.burst.enabled()) {
      std::cout << "burst loss (GE, drop_bad=1)";
    } else if (faults.link.drop > 0.0) {
      std::cout << "iid loss p=" << faults.link.drop;
    } else {
      std::cout << "lossless";
    }
    std::cout << ", delay " << faults.link.delay << "+U{0.." << faults.link.jitter
              << "}, fault seed " << faults.link.seed << " (reliable mode, cold start dropped "
              << init.drops << ", delayed " << init.delayed << ")\n";
  }
  std::cout << "\n";

  Table table({"batch", "events", "+edges", "-edges", "advertisers", "rounds", "msgs",
               "bytes", "reflood msgs", "saved"});
  std::size_t batch_no = 0;
  std::uint64_t inc_msgs = 0;
  std::uint64_t ref_msgs = 0;
  for (const auto& batch : trace.batches) {
    const ReconvergeBatchStats a = inc->apply_batch(batch);
    const ReconvergeBatchStats b = ref->apply_batch(batch);
    inc_msgs += a.transmissions;
    ref_msgs += b.transmissions;
    const double saved =
        b.transmissions == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(a.transmissions) /
                                 static_cast<double>(b.transmissions));
    table.add_row({std::to_string(++batch_no), std::to_string(a.applied_events),
                   std::to_string(a.inserted_edges), std::to_string(a.removed_edges),
                   std::to_string(a.advertising_nodes), std::to_string(a.rounds),
                   std::to_string(a.transmissions), std::to_string(a.wire_bytes),
                   std::to_string(b.transmissions), format_double(saved, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nreplayed " << trace.batches.size() << " batches: " << inc_msgs
            << " incremental msgs vs " << ref_msgs << " re-flood msgs\n";

  const bool same = inc->spanner().edge_list() == ref->spanner().edge_list();
  std::cout << "incremental converged state == full re-flood: " << (same ? "yes" : "NO") << "\n";
  if (!same) return 1;
  if (verify) {
    const EdgeSet central = api::build_spanner(inc->graph(), spec).edges;
    const bool exact = inc->spanner() == central;
    std::cout << "final spanner == centralized construction: " << (exact ? "yes" : "NO") << "\n";
    if (!exact) return 1;
  }
  return 0;
}

/// --churn-trace --serve-replay: replay the trace through the multi-tenant
/// service, every batch submitted to every tenant, and check each tenant's
/// final published snapshot bit-exact against a from-scratch rebuild.
int run_serve_replay(const std::string& path, const api::SpannerSpec& spec,
                     const std::string& construction, bool verify, std::uint64_t seed,
                     serve::ServiceConfig cfg, std::size_t num_tenants) {
  ChurnTrace trace;
  if (!load_trace(path, trace)) return 2;

  if (!api::supports_incremental(spec)) {
    std::cerr << "--serve-replay supports --construction th1|th2|th3 (got " << construction
              << ")\n";
    return 2;
  }
  if (num_tenants == 0) {
    std::cerr << "--tenants expects a positive count\n";
    return 2;
  }
  cfg.max_tenants = std::max(cfg.max_tenants, num_tenants);

  obs::PhaseSpan timer("tool.serve_replay", "tool");
  serve::SpannerService service(cfg);
  const Graph initial = trace.initial_graph();
  std::vector<serve::TenantId> ids;
  ids.reserve(num_tenants);
  for (std::size_t t = 0; t < num_tenants; ++t) {
    ids.push_back(service.open_tenant(initial, spec.to_string()));
  }
  std::cout << "serve replay: " << path << "\n"
            << "initial graph: n=" << initial.num_nodes() << " m=" << initial.num_edges()
            << ", " << num_tenants << " tenant(s) of " << spec.to_string() << ", "
            << cfg.worker_threads << " worker(s), opened in " << format_double(timer.seconds(), 3)
            << " s\n\n";

  std::uint64_t retries = 0;
  for (const auto& batch : trace.batches) {
    for (const serve::TenantId id : ids) {
      serve::Admission verdict = service.submit(id, batch);
      if (verdict != serve::Admission::kAccepted) {
        // Back off exactly once: drain the offender and resubmit.
        ++retries;
        service.flush(id);
        verdict = service.submit(id, batch);
        if (verdict != serve::Admission::kAccepted) {
          std::cerr << "tenant " << id << ": batch rejected twice ("
                    << serve::admission_name(verdict) << ")\n";
          return 1;
        }
      }
    }
  }
  service.drain();
  const double replay_s = timer.seconds();

  Table table({"tenant", "epoch", "submitted", "coalesced", "applied", "batches", "retry",
               "|H|"});
  for (const serve::TenantId id : ids) {
    const serve::TenantStats ts = service.tenant_stats(id);
    table.add_row({std::to_string(id), std::to_string(ts.epoch),
                   std::to_string(ts.events_submitted), std::to_string(ts.events_coalesced),
                   std::to_string(ts.events_applied), std::to_string(ts.batches_applied),
                   std::to_string(ts.rejected_retry_after + ts.rejected_overloaded),
                   std::to_string(ts.spanner_edges)});
  }
  table.print(std::cout);
  const serve::ServiceStats totals = service.stats();
  std::cout << "\nreplayed " << trace.batches.size() << " batches x " << num_tenants
            << " tenants in " << format_double(replay_s, 3) << " s (" << totals.epochs_published
            << " epochs, " << totals.events_coalesced << " of " << totals.events_accepted
            << " accepted events coalesced away, " << retries << " backoff retries)\n";

  // Every tenant ran the same stream, so all final snapshots must agree —
  // and each must equal a from-scratch build on its own final topology.
  for (const serve::TenantId id : ids) {
    const auto snap = service.snapshot(id);
    const EdgeSet scratch = api::build_spanner(snap->graph(), spec).edges;
    if (!(scratch == snap->spanner())) {
      std::cout << "tenant " << id << " final snapshot vs from-scratch rebuild: NOT bit-exact\n";
      return 1;
    }
  }
  std::cout << "final snapshots vs from-scratch rebuilds: bit-exact ("
            << service.snapshot(ids.front())->num_spanner_edges() << " edges each)\n";

  if (verify) {
    const auto snap = service.snapshot(ids.front());
    timer.reset();
    const api::VerifyFn oracle = api::make_verifier(spec);
    api::VerifyOptions vopts;
    vopts.seed = seed;
    const bool ok = oracle(snap->graph(), snap->spanner(), vopts).satisfied;
    std::cout << "oracle on final snapshot: " << (ok ? "satisfied" : "VIOLATED") << " ("
              << format_double(timer.seconds(), 3) << " s)\n";
    if (!ok) return 1;
  }
  return 0;
}

int tool_main(int argc, char** argv) {
  Options opts(argc, argv);
  const std::string construction = opts.get_string("construction", "th2");
  const bool verify = !opts.get_flag("no-verify");
  const std::string dot_path = opts.get_string("dot", "");
  const std::string out_path = opts.get_string("save-graph", "");
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  bool spec_seed_explicit = false;
  const api::SpannerSpec spec =
      spanner_spec_from_flags(construction, opts, seed, spec_seed_explicit);
  std::string churn_path = opts.get_string("churn-trace", "");
  const bool reconverge = opts.get_flag("reconverge");
  // --serve-replay: the trace through the multi-tenant service layer.
  const bool serve_replay = opts.get_flag("serve-replay");
  serve::ServiceConfig serve_cfg;
  const auto num_tenants = static_cast<std::size_t>(opts.get_int("tenants", 4));
  serve_cfg.worker_threads = static_cast<std::size_t>(opts.get_int("workers", 0));
  serve_cfg.tenant_queue_budget =
      static_cast<std::size_t>(opts.get_int("queue-budget", 4096));
  serve_cfg.max_batch_events = static_cast<std::size_t>(opts.get_int("batch-events", 512));
  const std::string trace_out = opts.get_string("trace-out", "");
  const std::string metrics_out = opts.get_string("metrics-out", "");
  const FaultConfig faults = fault_config_from_flags(opts, seed);
  // --shards S builds through the sharded engine (S >= 2; 1 = flat engine,
  // same output either way), --shard-batch the roots per frontier batch.
  const auto shards = static_cast<std::size_t>(opts.get_int("shards", 1));
  const auto shard_batch = static_cast<std::size_t>(opts.get_int("shard-batch", 128));
  const std::string emit_trace_path = opts.get_string("emit-churn-trace", "");
  const auto trace_batches = static_cast<std::size_t>(opts.get_int("trace-batches", 20));
  const auto trace_events = static_cast<std::size_t>(opts.get_int("trace-events", 10));
  const double trace_node_frac = opts.get_double("trace-node-frac", 0.0);
  Rng rng(seed);
  const api::GraphSpec graph_spec = graph_spec_from_flags(opts);
  // All options are registered by now: gate --help and typos before paying
  // for graph generation.
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;
  const ObsOutputs obs_outputs(trace_out, metrics_out);
  Graph g = api::build_graph(graph_spec, &rng);

  if (!emit_trace_path.empty()) {
    const ChurnTrace trace =
        random_edge_churn_trace(g, trace_batches, trace_events, trace_node_frac, seed);
    std::ofstream out(emit_trace_path);
    if (!out) {
      std::cerr << "cannot write " << emit_trace_path << "\n";
      return 2;
    }
    write_churn_trace(out, trace);
    std::cout << "churn trace (" << trace.batches.size() << " batches x " << trace_events
              << " events) written to " << emit_trace_path << "\n";
    return 0;
  }
  if ((reconverge || serve_replay) && churn_path.empty()) {
    churn_path = opts.require_string("churn-trace");
  }
  if (!churn_path.empty()) {
    if (reconverge) return run_reconverge(churn_path, spec, construction, verify, faults);
    if (serve_replay) {
      return run_serve_replay(churn_path, spec, construction, verify, seed, serve_cfg,
                              num_tenants);
    }
    return run_churn_replay(churn_path, spec, construction, verify, seed);
  }

  std::cout << "graph: n=" << g.num_nodes() << " m=" << g.num_edges() << " maxdeg="
            << g.max_degree() << "\n";
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    write_edge_list(out, g);
    std::cout << "graph saved to " << out_path << "\n";
  }

  obs::PhaseSpan timer("tool.build", "tool");
  api::BuildContext ctx;
  // Thread the CLI seed RNG through seeded builds — unless the spec string
  // itself pinned a seed, which then drives a fresh RNG inside the build.
  if (!spec_seed_explicit) ctx.rng = &rng;
  ctx.shards.num_shards = shards;
  ctx.shards.batch_roots = shard_batch;
  const api::SpannerResult res = api::build_spanner(g, spec, ctx);
  const double build_s = timer.seconds();

  const auto stats = compute_spanner_stats(res.edges);
  Table table({"metric", "value"});
  table.add_row({"construction", construction});
  table.add_row({"guarantee", res.guarantee_label});
  table.add_row({"edges", format_edges_with_fraction(stats)});
  table.add_row({"edges/n", format_double(stats.edges_per_node, 2)});
  table.add_row({"max degree in H", std::to_string(stats.max_degree)});
  table.add_row({"build time (s)", format_double(build_s, 3)});

  if (verify && res.verify != nullptr) {
    timer.reset();
    api::VerifyOptions vopts;
    vopts.seed = seed;
    const api::VerifyReport report = res.verify(g, res.edges, vopts);
    table.add_row({"verified", report.satisfied ? "yes" : "NO"});
    table.add_row({"measured max ratio", format_double(report.max_ratio, 3)});
    table.add_row({"verify time (s)", format_double(timer.seconds(), 3)});
  }
  table.print(std::cout);

  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    out << to_dot(g, &res.edges, "H");
    std::cout << "DOT written to " << dot_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return tool_main(argc, argv);
  } catch (const OptionError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  } catch (const api::SpecError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
