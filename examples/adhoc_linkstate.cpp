// Ad-hoc link-state routing scenario (the paper's motivating application,
// Section 1): a dense wireless network where flooding the full topology is
// wasteful. Runs the distributed RemSpan protocol on the round simulator,
// compares its advertisement cost against full link-state dissemination,
// and routes packets greedily over the resulting remote-spanner.
//
//   ./adhoc_linkstate [--n 300] [--side 5] [--eps 0.5] [--seed 3]
#include <iostream>

#include "analysis/spanner_stats.hpp"
#include "analysis/stretch_oracle.hpp"
#include "core/remote_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "graph/connectivity.hpp"
#include "sim/remspan_protocol.hpp"
#include "sim/routing.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace remspan;

int tool_main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto n = static_cast<std::size_t>(opts.get_int("n", 300));
  const double side = opts.get_double("side", 5.0);
  const double eps = opts.get_double("eps", 0.5);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 3));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Rng rng(seed);
  const auto gg = uniform_unit_ball_graph(n, side, 2, rng);
  const Graph g = largest_component(gg.graph);
  std::cout << "ad-hoc network: n=" << g.num_nodes() << " links=" << g.num_edges()
            << " avg_degree=" << format_double(g.average_degree(), 1) << "\n\n";

  // Distributed construction on the round simulator.
  RemSpanConfig cfg;
  cfg.kind = RemSpanConfig::Kind::kLowStretchMis;
  cfg.r = domination_radius_for_eps(eps);
  const auto run = run_remspan_distributed(g, cfg);
  std::cout << "RemSpan protocol: " << run.rounds << " rounds (paper: 2r-1+2b = "
            << cfg.expected_rounds() << "), " << run.stats.transmissions
            << " transmissions, " << run.stats.payload_words << " payload words\n";

  // Steady-state comparison: link-state routing periodically floods its
  // advertised links network-wide (each flood costs one transmission per
  // node). Classic OSPF floods all 2m link entries; the remote-spanner
  // approach floods only H's links — the protocol's local setup messages
  // above are a one-time cost confined to B(u, r-1+beta).
  const auto stats = compute_spanner_stats(run.spanner);
  const std::uint64_t full_words =
      static_cast<std::uint64_t>(2 * g.num_edges()) * g.num_nodes();
  const std::uint64_t spanner_words =
      static_cast<std::uint64_t>(2 * stats.spanner_edges) * g.num_nodes();
  std::cout << "steady-state advertisement volume per refresh cycle:\n"
            << "  full link state : ~" << full_words << " words network-wide\n"
            << "  remote-spanner  : ~" << spanner_words << " words ("
            << format_double(100.0 * static_cast<double>(spanner_words) /
                                 static_cast<double>(full_words),
                             1)
            << "% — advertised sub-graph " << format_edges_with_fraction(stats)
            << " of all links)\n\n";

  // Verify the stretch the protocol promises, then route.
  const Stretch s = stretch_for_radius(cfg.r);
  const auto report = check_remote_stretch(g, run.spanner, s);
  std::cout << "stretch (" << format_double(s.alpha, 2) << "," << format_double(s.beta, 2)
            << "): " << (report.satisfied ? "verified over all pairs" : "VIOLATED")
            << ", worst ratio " << format_double(report.max_ratio, 3) << ", avg "
            << format_double(report.avg_ratio, 3) << "\n\n";

  Table table({"src", "dst", "greedy hops", "shortest", "ratio"});
  Rng pick(seed + 1);
  for (int i = 0; i < 8; ++i) {
    const auto s_node = static_cast<NodeId>(pick.uniform(g.num_nodes()));
    const auto t_node = static_cast<NodeId>(pick.uniform(g.num_nodes()));
    if (s_node == t_node) continue;
    const auto route = greedy_route(run.spanner, s_node, t_node);
    const Dist sp = bfs_distance(GraphView(g), s_node, t_node);
    table.add_row({std::to_string(s_node), std::to_string(t_node),
                   route.delivered ? std::to_string(route.hops()) : "-",
                   std::to_string(sp),
                   route.delivered && sp > 0
                       ? format_double(static_cast<double>(route.hops()) / sp, 2)
                       : "-"});
  }
  table.print(std::cout);
  return 0;
}

int main(int argc, char** argv) { return cli_main(tool_main, argc, argv); }
