/* capi_demo — the C ABI round-trip, compiled as plain C99 against
 * include/remspan/remspan.h + libremspan_c (no C++ anywhere in this file):
 *
 *   write + load an edge list, build a "th2?k=2" spanner, query its edge
 *   count and verify its stretch guarantee with the exact oracle, replay a
 *   churn batch through an incremental session, and free everything.
 *
 * Runs as the capi.demo ctest; exits non-zero on any unexpected status.
 */
#include <remspan/remspan.h>

#include <stdio.h>
#include <stdlib.h>

static void check(remspan_status_t status, const char* what) {
  if (status != REMSPAN_OK) {
    fprintf(stderr, "%s failed (%d): %s\n", what, (int)status, remspan_last_error());
    /* remspan-lint: allow(R3) plain-C demo: there is no stack unwinding in a
     * C translation unit and nothing to destruct; exit(1) after printing the
     * ABI error is the whole error path. */
    exit(1);
  }
}

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "capi_demo_graph.txt";

  if (remspan_abi_version() != REMSPAN_ABI_VERSION) {
    fprintf(stderr, "ABI mismatch: built against %u, loaded %u\n",
            (unsigned)REMSPAN_ABI_VERSION, (unsigned)remspan_abi_version());
    return 1;
  }

  /* A small two-cluster network, written and loaded as an edge list. */
  {
    FILE* f = fopen(path, "w");
    if (f == NULL) {
      fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    fprintf(f, "# capi_demo workload\nn 8\n");
    fprintf(f, "0 1\n0 2\n1 2\n1 3\n2 3\n3 4\n4 5\n4 6\n5 6\n5 7\n6 7\n");
    fclose(f);
  }

  remspan_graph_t* graph = NULL;
  check(remspan_graph_load(path, &graph), "remspan_graph_load");
  printf("graph: n=%u m=%zu\n", remspan_graph_num_nodes(graph),
         remspan_graph_num_edges(graph));

  /* Build by spec string and query it. */
  remspan_spanner_t* spanner = NULL;
  check(remspan_spanner_build(graph, "th2?k=2", &spanner), "remspan_spanner_build");
  double alpha = 0.0, beta = 0.0;
  check(remspan_spanner_guarantee(spanner, &alpha, &beta), "remspan_spanner_guarantee");
  printf("spanner %s: %zu/%zu edges, guarantee (%g,%g)\n", remspan_spanner_spec(spanner),
         remspan_spanner_num_edges(spanner), remspan_graph_num_edges(graph), alpha, beta);

  int satisfied = 0;
  double max_ratio = 0.0;
  check(remspan_spanner_verify(graph, spanner, 1, &satisfied, &max_ratio),
        "remspan_spanner_verify");
  printf("oracle: %s (max ratio %g)\n", satisfied ? "satisfied" : "VIOLATED", max_ratio);
  if (!satisfied) return 1;

  /* An error path, by contract: a typo'd spec must fail with PARSE. */
  remspan_spanner_t* bogus = NULL;
  if (remspan_spanner_build(graph, "th9?x=1", &bogus) != REMSPAN_ERR_PARSE) {
    fprintf(stderr, "bad spec unexpectedly accepted\n");
    return 1;
  }
  printf("bad spec rejected: %s\n", remspan_last_error());

  /* Churn: drop a bridge, add a shortcut, via an incremental session. */
  remspan_session_t* session = NULL;
  check(remspan_session_open(graph, "th2?k=2", &session), "remspan_session_open");
  const remspan_event_t batch[] = {
      {REMSPAN_EVENT_EDGE_DOWN, 3, 4},
      {REMSPAN_EVENT_EDGE_UP, 2, 5},
      {REMSPAN_EVENT_EDGE_UP, 0, 7},
  };
  remspan_batch_stats_t stats;
  check(remspan_session_apply(session, batch, sizeof(batch) / sizeof(batch[0]), &stats),
        "remspan_session_apply");
  printf("batch: %zu applied, +%zu/-%zu edges, %zu dirty roots, |H|=%zu\n",
         stats.applied_events, stats.inserted_edges, stats.removed_edges, stats.dirty_roots,
         stats.spanner_edges);

  /* Cross-check: a from-scratch build on the churned topology must match
   * the maintained spanner edge-for-edge. */
  remspan_graph_t* churned = NULL;
  check(remspan_session_graph(session, &churned), "remspan_session_graph");
  remspan_spanner_t* scratch = NULL;
  check(remspan_spanner_build(churned, "th2?k=2", &scratch), "rebuild on churned graph");
  size_t session_edges = remspan_session_spanner_num_edges(session);
  if (session_edges != remspan_spanner_num_edges(scratch)) {
    fprintf(stderr, "session/|H|=%zu differs from scratch rebuild %zu\n", session_edges,
            remspan_spanner_num_edges(scratch));
    return 1;
  }
  uint32_t* a = malloc(2 * session_edges * sizeof(uint32_t));
  uint32_t* b = malloc(2 * session_edges * sizeof(uint32_t));
  if (a == NULL || b == NULL) return 1;
  remspan_session_spanner_edges(session, a, session_edges);
  remspan_spanner_edges(scratch, b, session_edges);
  {
    size_t i;
    for (i = 0; i < 2 * session_edges; ++i) {
      if (a[i] != b[i]) {
        fprintf(stderr, "maintained spanner diverges from rebuild at slot %zu\n", i);
        return 1;
      }
    }
  }
  printf("incremental session bit-exact vs from-scratch rebuild (%zu edges)\n", session_edges);

  free(a);
  free(b);
  remspan_spanner_free(scratch);
  remspan_graph_free(churned);
  remspan_session_free(session);
  remspan_spanner_free(spanner);
  remspan_graph_free(graph);
  remove(path);
  printf("capi_demo: ok\n");
  return 0;
}
